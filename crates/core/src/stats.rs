//! Per-run instrumentation: how hard did each pruning work?
//!
//! The paper's Section V measures the *effectiveness of pruning
//! strategies* indirectly through runtime; these counters expose it
//! directly and back the ablation benches. [`PhaseTimers`] adds the
//! wall-clock dimension: where each run's time actually went, phase by
//! phase (see [`crate::trace::Phase`]).

use std::fmt;
use std::time::Duration;

use crate::trace::{DpDecision, Phase};

/// Counters accumulated over one mining run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinerStats {
    /// Enumeration-tree nodes visited (itemsets considered).
    pub nodes_visited: u64,
    /// Subtrees cut by superset pruning (Lemma 4.2).
    pub superset_pruned: u64,
    /// Sibling groups cut by subset pruning (Lemma 4.3).
    pub subset_pruned: u64,
    /// Candidates refuted by the Chernoff–Hoeffding bound (Lemma 4.1)
    /// without running the exact DP.
    pub ch_pruned: u64,
    /// Candidates whose exact frequent probability fell at or below
    /// `pfct` (subtree pruned by anti-monotonicity).
    pub freq_pruned: u64,
    /// Itemsets rejected because the FCP upper bound (Lemma 4.4) fell at
    /// or below `pfct`.
    pub bound_rejected: u64,
    /// Itemsets decided because upper and lower FCP bounds coincided.
    pub bound_decided: u64,
    /// Itemsets whose FCP was computed exactly (inclusion–exclusion).
    pub fcp_exact: u64,
    /// Itemsets whose FCP was estimated by `ApproxFCP`.
    pub fcp_sampled: u64,
    /// Total Monte-Carlo samples drawn across all `ApproxFCP` calls.
    pub samples_drawn: u64,
    /// Exact frequent-probability DP evaluations.
    pub freq_prob_evals: u64,
}

impl MinerStats {
    /// Merge another run's counters into this one (used by sweeps).
    pub fn absorb(&mut self, other: &MinerStats) {
        self.nodes_visited += other.nodes_visited;
        self.superset_pruned += other.superset_pruned;
        self.subset_pruned += other.subset_pruned;
        self.ch_pruned += other.ch_pruned;
        self.freq_pruned += other.freq_pruned;
        self.bound_rejected += other.bound_rejected;
        self.bound_decided += other.bound_decided;
        self.fcp_exact += other.fcp_exact;
        self.fcp_sampled += other.fcp_sampled;
        self.samples_drawn += other.samples_drawn;
        self.freq_prob_evals += other.freq_prob_evals;
    }

    /// Total itemsets whose FCP was evaluated (exactly or by sampling).
    pub fn fcp_evaluations(&self) -> u64 {
        self.fcp_exact + self.fcp_sampled
    }
}

impl fmt::Display for MinerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes={} super={} sub={} ch={} freq={} freq_prob_evals={} bound_rej={} \
             bound_dec={} fcp_exact={} fcp_sampled={} samples={}",
            self.nodes_visited,
            self.superset_pruned,
            self.subset_pruned,
            self.ch_pruned,
            self.freq_pruned,
            self.freq_prob_evals,
            self.bound_rejected,
            self.bound_decided,
            self.fcp_exact,
            self.fcp_sampled,
            self.samples_drawn,
        )
    }
}

/// Counters for the bitmap/DP kernel layer beneath the miner: how the
/// incremental Poisson-binomial downdate and the bound-input memoization
/// actually behaved on a run.
///
/// Kept separate from [`MinerStats`] on purpose: `MinerStats` counters
/// are each reconcilable one-to-one from the trace-event stream (the
/// observability tests assert it), while these are substrate-level
/// measurements with no per-event representation. They travel on
/// [`crate::MiningOutcome::kernel`] and surface through the
/// [`crate::metrics::HistogramSink`] snapshot and the `BENCH_*.json`
/// schema (v3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Frequentness DP rows derived by downdating the parent row
    /// (dropped transactions divided out) instead of recomputing.
    pub dp_incremental: u64,
    /// Frequentness DP rows rebuilt from scratch — fresh roots, cases
    /// where the downdate would cost more than a rebuild, and
    /// numerical-stability fallbacks.
    pub dp_recomputed: u64,
    /// Evaluator bound-input (event-table) cache hits, verified by full
    /// tid-set equality.
    pub bound_cache_hits: u64,
    /// Evaluator bound-input cache misses (tables built).
    pub bound_cache_misses: u64,
    /// 64-bit words streamed through the tid-bitmap kernels on the
    /// miner's hot paths (intersections, difference scans).
    pub bitmap_words: u64,
}

impl KernelStats {
    /// Merge another run's counters into this one.
    pub fn absorb(&mut self, other: &KernelStats) {
        self.dp_incremental += other.dp_incremental;
        self.dp_recomputed += other.dp_recomputed;
        self.bound_cache_hits += other.bound_cache_hits;
        self.bound_cache_misses += other.bound_cache_misses;
        self.bitmap_words += other.bitmap_words;
    }

    /// Total frequentness DP rows produced either way.
    pub fn dp_rows(&self) -> u64 {
        self.dp_incremental + self.dp_recomputed
    }

    /// The `(name, value)` pairs in stable order — the single source for
    /// the metrics snapshot and the benchmark report schema.
    pub fn named(&self) -> [(&'static str, u64); 5] {
        [
            ("dp_incremental", self.dp_incremental),
            ("dp_recomputed", self.dp_recomputed),
            ("bound_cache_hits", self.bound_cache_hits),
            ("bound_cache_misses", self.bound_cache_misses),
            ("bitmap_words", self.bitmap_words),
        ]
    }
}

impl fmt::Display for KernelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dp_inc={} dp_full={} cache_hit={} cache_miss={} words={}",
            self.dp_incremental,
            self.dp_recomputed,
            self.bound_cache_hits,
            self.bound_cache_misses,
            self.bitmap_words,
        )
    }
}

/// Per-reason audit of every frequentness-DP row decision the miner
/// took: one [`DpDecision`] is recorded per DP-row qualification, so the
/// reason counters reconcile *exactly* with [`KernelStats`] —
/// [`DpAudit::incremental`] equals `dp_incremental` and
/// [`DpAudit::recomputed`] equals `dp_recomputed` (the differential
/// tests assert both). This is the machine-readable answer to "why is
/// `dp_incremental` 0 on this dataset": the refusal mix says whether the
/// measured error-tolerance guard, a row-validation failure, the
/// downdate cap or plain cost accounting forced each rebuild.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpAudit {
    /// Rows derived by downdating the parent row (the fast path).
    pub incremental: u64,
    /// Rows built from scratch at subtree roots (no parent to downdate).
    pub fresh_root: u64,
    /// Rows built from scratch by the level-wise BFS miner (which never
    /// downdates — see `crate::bfs`).
    pub fresh_level: u64,
    /// Rebuilds because the downdate would touch at least as many
    /// transactions as a rebuild (`dropped ≥ |T(X∪e)|`).
    pub cost_skip: u64,
    /// Rebuilds because the parent row had accumulated `MAX_DOWNDATES`
    /// removals.
    pub downdate_cap: u64,
    /// Downdates refused because the measured error bound of the
    /// downdated row exceeded `dp_error_tol`.
    pub err_tol: u64,
    /// Downdates refused because a divided-out row left the valid
    /// probability range.
    pub row_validation: u64,
    /// Downdates refused on degenerate inputs (empty row or `p = 1`).
    pub degenerate: u64,
}

impl DpAudit {
    /// Record one decision (the single mutation point, shared by the
    /// miners and by [`crate::trace::CountingSink`] replay).
    pub fn record(&mut self, decision: DpDecision) {
        match decision {
            DpDecision::Incremental => self.incremental += 1,
            DpDecision::FreshRoot => self.fresh_root += 1,
            DpDecision::FreshLevel => self.fresh_level += 1,
            DpDecision::CostSkip => self.cost_skip += 1,
            DpDecision::DowndateCap => self.downdate_cap += 1,
            DpDecision::ErrTol { .. } => self.err_tol += 1,
            DpDecision::RowValidation { .. } => self.row_validation += 1,
            DpDecision::Degenerate => self.degenerate += 1,
        }
    }

    /// Rows rebuilt from scratch, summed over every rebuild reason —
    /// reconciles exactly with [`KernelStats::dp_recomputed`].
    pub fn recomputed(&self) -> u64 {
        self.fresh_root
            + self.fresh_level
            + self.cost_skip
            + self.downdate_cap
            + self.err_tol
            + self.row_validation
            + self.degenerate
    }

    /// Rebuilds caused by a *refused* downdate (as opposed to roots or
    /// cost/cap accounting).
    pub fn refusals(&self) -> u64 {
        self.err_tol + self.row_validation + self.degenerate
    }

    /// Total decisions recorded — reconciles with
    /// [`KernelStats::dp_rows`].
    pub fn total(&self) -> u64 {
        self.incremental + self.recomputed()
    }

    /// Merge another run's audit into this one.
    pub fn absorb(&mut self, other: &DpAudit) {
        self.incremental += other.incremental;
        self.fresh_root += other.fresh_root;
        self.fresh_level += other.fresh_level;
        self.cost_skip += other.cost_skip;
        self.downdate_cap += other.downdate_cap;
        self.err_tol += other.err_tol;
        self.row_validation += other.row_validation;
        self.degenerate += other.degenerate;
    }

    /// The `(name, value)` pairs in stable order — the single source for
    /// the metrics snapshot, the Prometheus exporter and the benchmark
    /// report schema (v4). Names match [`DpDecision::name`].
    pub fn named(&self) -> [(&'static str, u64); 8] {
        [
            ("incremental", self.incremental),
            ("fresh_root", self.fresh_root),
            ("fresh_level", self.fresh_level),
            ("cost_skip", self.cost_skip),
            ("downdate_cap", self.downdate_cap),
            ("err_tol", self.err_tol),
            ("row_validation", self.row_validation),
            ("degenerate", self.degenerate),
        ]
    }
}

impl fmt::Display for DpAudit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inc={} root={} level={} cost={} cap={} err={} row={} degen={}",
            self.incremental,
            self.fresh_root,
            self.fresh_level,
            self.cost_skip,
            self.downdate_cap,
            self.err_tol,
            self.row_validation,
            self.degenerate,
        )
    }
}

/// Wall-clock totals per instrumented phase ([`Phase`]), with call
/// counts.
///
/// Accumulated by the shared evaluator via [`crate::trace::timed`] and
/// returned in every [`crate::MiningOutcome`]; indexed by
/// [`Phase::index`]. `Eq` compares exact nanosecond totals — meaningful
/// only for replayed or absorbed timers, not across live runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimers {
    totals: [Duration; Phase::COUNT],
    counts: [u64; Phase::COUNT],
}

impl PhaseTimers {
    /// Record one span of `phase`.
    pub fn add(&mut self, phase: Phase, elapsed: Duration) {
        self.totals[phase.index()] += elapsed;
        self.counts[phase.index()] += 1;
    }

    /// Total time spent in `phase`.
    pub fn total(&self, phase: Phase) -> Duration {
        self.totals[phase.index()]
    }

    /// Number of spans recorded for `phase`.
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Sum over all phases.
    pub fn grand_total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// True when no span was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Merge another run's timers into this one (used by sweeps).
    pub fn absorb(&mut self, other: &PhaseTimers) {
        for i in 0..Phase::COUNT {
            self.totals[i] += other.totals[i];
            self.counts[i] += other.counts[i];
        }
    }
}

impl fmt::Display for PhaseTimers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for phase in Phase::ALL {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(
                f,
                "{}={:.1?}/{}",
                phase.name(),
                self.total(phase),
                self.count(phase)
            )?;
        }
        Ok(())
    }
}

/// A stats bundle together with wall-clock time, as reported by sweeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimedStats {
    /// The counters.
    pub stats: MinerStats,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Where the time went, phase by phase.
    pub timers: PhaseTimers,
}

impl fmt::Display for TimedStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "elapsed={:.1?} | {} | phases: {}",
            self.elapsed, self.stats, self.timers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = MinerStats {
            nodes_visited: 2,
            fcp_sampled: 1,
            samples_drawn: 100,
            ..Default::default()
        };
        let b = MinerStats {
            nodes_visited: 3,
            fcp_exact: 4,
            samples_drawn: 50,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.nodes_visited, 5);
        assert_eq!(a.fcp_evaluations(), 5);
        assert_eq!(a.samples_drawn, 150);
    }

    #[test]
    fn display_is_compact() {
        let s = MinerStats::default().to_string();
        assert!(s.starts_with("nodes=0"));
        assert!(s.contains("samples=0"));
        assert!(s.contains("freq_prob_evals=0"));
    }

    #[test]
    fn dp_audit_records_and_reconciles() {
        let mut audit = DpAudit::default();
        audit.record(DpDecision::Incremental);
        audit.record(DpDecision::FreshRoot);
        audit.record(DpDecision::FreshLevel);
        audit.record(DpDecision::CostSkip);
        audit.record(DpDecision::DowndateCap);
        audit.record(DpDecision::ErrTol { measured: 3.2e-8 });
        audit.record(DpDecision::RowValidation { violation: 0.1 });
        audit.record(DpDecision::Degenerate);
        assert_eq!(audit.incremental, 1);
        assert_eq!(audit.recomputed(), 7);
        assert_eq!(audit.refusals(), 3);
        assert_eq!(audit.total(), 8);
        let named = audit.named();
        assert_eq!(named.len(), 8);
        assert!(named.iter().all(|&(_, v)| v == 1));
        assert_eq!(named.iter().map(|&(_, v)| v).sum::<u64>(), audit.total());

        let mut sum = DpAudit::default();
        sum.absorb(&audit);
        sum.absorb(&audit);
        assert_eq!(sum.total(), 16);
        assert_eq!(sum.refusals(), 6);
        let s = audit.to_string();
        assert!(s.contains("err=1"), "{s}");
    }

    #[test]
    fn phase_timers_accumulate_and_absorb() {
        let mut t = PhaseTimers::default();
        assert!(t.is_empty());
        t.add(Phase::FreqDp, Duration::from_micros(10));
        t.add(Phase::FreqDp, Duration::from_micros(5));
        t.add(Phase::FcpSample, Duration::from_micros(100));
        assert_eq!(t.total(Phase::FreqDp), Duration::from_micros(15));
        assert_eq!(t.count(Phase::FreqDp), 2);
        assert_eq!(t.grand_total(), Duration::from_micros(115));

        let mut sum = PhaseTimers::default();
        sum.absorb(&t);
        sum.absorb(&t);
        assert_eq!(sum.total(Phase::FcpSample), Duration::from_micros(200));
        assert_eq!(sum.count(Phase::FreqDp), 4);
    }

    #[test]
    fn timed_stats_display_mentions_every_phase() {
        let s = TimedStats::default().to_string();
        assert!(s.starts_with("elapsed="));
        for phase in Phase::ALL {
            assert!(s.contains(phase.name()), "{s}");
        }
    }
}
