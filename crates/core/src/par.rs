//! Dependency-free fork-join parallelism: a std-only scoped thread pool
//! with per-worker deques and work stealing.
//!
//! PR 1 deliberately vendored every dependency in-tree (crossbeam and
//! parking_lot were replaced with std), so the miner's parallel phases
//! are built on nothing but [`std::thread::scope`] and [`std::sync::Mutex`].
//! The pool is *fork-join*: [`scatter`] takes a static set of tasks,
//! distributes them round-robin over per-worker deques, lets idle workers
//! steal from the back of their neighbours' deques, and returns every
//! result **in submission order**. Because the task set is static (tasks
//! never spawn tasks), a worker whose own deque is empty and whose steal
//! sweep comes up empty can simply exit — there is no blocking wait and
//! therefore no deadlock, regardless of oversubscription.
//!
//! Determinism contract: the *assignment* of tasks to workers is
//! nondeterministic (that is the point of stealing), but the returned
//! `Vec` is always indexed by submission order, and each task only sees
//! its own index — so a caller that derives any per-task randomness from
//! the task index (see [`mix_seed`]) gets results that are independent of
//! the stealing schedule and of the worker count.
//!
//! Panic contract: a panicking task aborts the scatter — the first
//! panic's original payload is captured and re-raised on the calling
//! thread after the scope joins, instead of hanging the pool, silently
//! dropping tasks, or degrading into std's generic "a scoped thread
//! panicked" message.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// What a worker was doing during a [`PoolSpan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolSpanKind {
    /// Executing one scattered task (its submission index is
    /// [`PoolSpan::task`]).
    Task,
    /// Sweeping the other workers' deques and successfully stealing.
    Steal,
    /// The terminal empty sweep before the worker exits.
    Idle,
}

impl PoolSpanKind {
    /// Stable snake_case name used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            PoolSpanKind::Task => "task",
            PoolSpanKind::Steal => "steal",
            PoolSpanKind::Idle => "idle",
        }
    }
}

/// One timed interval on a work-stealing-pool worker, recorded by
/// [`scatter_observed`] and replayed to the caller's sink after the join
/// barrier. Carries a raw [`Instant`] so each consumer can convert to its
/// own epoch.
#[derive(Debug, Clone, Copy)]
pub struct PoolSpan {
    /// Worker index (`0` is the calling thread).
    pub worker: u32,
    /// Submission index of the task for [`PoolSpanKind::Task`] spans
    /// (zero otherwise).
    pub task: usize,
    /// What the worker was doing.
    pub kind: PoolSpanKind,
    /// When the interval began.
    pub start: Instant,
    /// How long it lasted.
    pub dur: Duration,
}

/// A lock-protected buffer of [`PoolSpan`]s shared by the workers of one
/// [`scatter_observed`] call. The lock is taken once per recorded span —
/// task granularity, not node granularity — so contention is negligible.
#[derive(Debug, Default)]
pub struct PoolTrace {
    spans: Mutex<Vec<PoolSpan>>,
}

impl PoolTrace {
    /// An empty trace buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, span: PoolSpan) {
        lock(&self.spans).push(span);
    }

    /// Drain the recorded spans, sorted by worker then start time (the
    /// deterministic replay order; per-worker order is chronological).
    pub fn into_spans(self) -> Vec<PoolSpan> {
        let mut spans = self
            .spans
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        spans.sort_by_key(|s| (s.worker, s.start));
        spans
    }
}

/// Per-worker live counter arrays in [`PoolGauges`] track at most this
/// many workers; the counters of any worker past the cap fold into the
/// last slot, so no event is ever dropped.
pub const MAX_TRACKED_WORKERS: usize = 32;

/// Live, lock-free health counters of the work-stealing pool, updated by
/// [`scatter_instrumented`] *while the workers run* — unlike
/// [`PoolTrace`], whose spans only become visible after the join barrier.
///
/// All counters are cumulative over the gauges' lifetime (a run may
/// contain several scatters) and are updated with relaxed atomics: a
/// reader sampling mid-run sees a near-instantaneous, possibly slightly
/// torn-across-counters view, which is exactly the right trade for
/// telemetry. Queue depth is derived: `total − completed` is the number
/// of submitted tasks not yet finished (queued or in flight).
#[derive(Debug)]
pub struct PoolGauges {
    total: AtomicU64,
    completed: AtomicU64,
    workers: AtomicU64,
    scatters: AtomicU64,
    tasks: [AtomicU64; MAX_TRACKED_WORKERS],
    steals: [AtomicU64; MAX_TRACKED_WORKERS],
    idles: [AtomicU64; MAX_TRACKED_WORKERS],
}

impl Default for PoolGauges {
    fn default() -> Self {
        Self::new()
    }
}

impl PoolGauges {
    /// Fresh gauges, all zero.
    pub fn new() -> Self {
        let zeros = || std::array::from_fn(|_| AtomicU64::new(0));
        Self {
            total: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            workers: AtomicU64::new(0),
            scatters: AtomicU64::new(0),
            tasks: zeros(),
            steals: zeros(),
            idles: zeros(),
        }
    }

    fn slot(worker: usize) -> usize {
        worker.min(MAX_TRACKED_WORKERS - 1)
    }

    /// A scatter of `tasks` tasks over `workers` workers is starting.
    pub fn begin(&self, tasks: usize, workers: usize) {
        self.total.fetch_add(tasks as u64, Ordering::Relaxed);
        self.workers.fetch_max(workers as u64, Ordering::Relaxed);
        self.scatters.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker `worker` finished executing one task.
    pub fn task_done(&self, worker: usize) {
        self.tasks[Self::slot(worker)].fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker `worker` completed a steal sweep that found work.
    pub fn stole(&self, worker: usize) {
        self.steals[Self::slot(worker)].fetch_add(1, Ordering::Relaxed);
    }

    /// Worker `worker` completed an empty (terminal) steal sweep.
    pub fn idled(&self, worker: usize) {
        self.idles[Self::slot(worker)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter, safe to take from any
    /// thread while workers are running.
    pub fn snapshot(&self) -> PoolGaugesSnapshot {
        let workers = self.workers.load(Ordering::Relaxed) as usize;
        let tracked = workers.min(MAX_TRACKED_WORKERS);
        let per_worker = (0..tracked)
            .map(|w| WorkerGauges {
                tasks: self.tasks[w].load(Ordering::Relaxed),
                steals: self.steals[w].load(Ordering::Relaxed),
                idles: self.idles[w].load(Ordering::Relaxed),
            })
            .collect();
        PoolGaugesSnapshot {
            total: self.total.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            workers: workers as u64,
            scatters: self.scatters.load(Ordering::Relaxed),
            per_worker,
        }
    }
}

/// A point-in-time copy of [`PoolGauges`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolGaugesSnapshot {
    /// Tasks submitted across all scatters so far.
    pub total: u64,
    /// Tasks finished so far (`total − completed` = queued or in flight).
    pub completed: u64,
    /// Largest worker count any scatter ran with.
    pub workers: u64,
    /// Number of scatters started.
    pub scatters: u64,
    /// Per-worker counters, one entry per tracked worker.
    pub per_worker: Vec<WorkerGauges>,
}

impl PoolGaugesSnapshot {
    /// Sum of per-worker task counts (equals `completed` at rest).
    pub fn tasks(&self) -> u64 {
        self.per_worker.iter().map(|w| w.tasks).sum()
    }

    /// Sum of per-worker successful steal sweeps.
    pub fn steals(&self) -> u64 {
        self.per_worker.iter().map(|w| w.steals).sum()
    }

    /// Sum of per-worker terminal idle sweeps.
    pub fn idles(&self) -> u64 {
        self.per_worker.iter().map(|w| w.idles).sum()
    }
}

/// One worker's counters inside a [`PoolGaugesSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerGauges {
    /// Tasks this worker executed.
    pub tasks: u64,
    /// Steal sweeps that found work.
    pub steals: u64,
    /// Terminal empty sweeps.
    pub idles: u64,
}

/// Number of hardware threads, with a fallback of 1 when the platform
/// cannot tell ([`std::thread::available_parallelism`] errors).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Lock a mutex, ignoring poisoning: the pool's own critical sections
/// never panic, so a poisoned lock only means some *task* panicked on
/// another worker — the data under the lock is still consistent and the
/// panic itself propagates when the scope joins.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Derive an independent, well-mixed RNG seed for stream `stream` of a
/// run seeded with `seed` (splitmix64-style finalizer). Used to give
/// each DFS root subtree its own reproducible random stream: the result
/// depends only on `(seed, stream)`, never on thread count or schedule.
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Split `total` into at most `parts` near-equal positive chunk sizes
/// (the first `total % parts` chunks get the extra unit). The sizes sum
/// to `total`; fewer than `parts` chunks are returned when `total` is
/// smaller than `parts`. Empty when either argument is zero.
pub fn chunk_sizes(total: usize, parts: usize) -> Vec<usize> {
    if total == 0 || parts == 0 {
        return Vec::new();
    }
    let parts = parts.min(total);
    let base = total / parts;
    let extra = total % parts;
    (0..parts).map(|i| base + usize::from(i < extra)).collect()
}

/// Run `f` over every item on up to `threads` workers and return the
/// results in submission order.
///
/// Tasks are dealt round-robin onto per-worker deques; each worker pops
/// its own deque front-first (preserving locality and rough submission
/// order) and steals from the back of the other deques once its own runs
/// dry. The calling thread participates as worker 0, so `threads == 1`
/// (or a single item) degenerates to a plain in-order loop with no
/// threads spawned, no locks taken and no allocation beyond the result
/// vector.
///
/// # Panics
///
/// Re-raises the first panicking task's original payload after all
/// workers stop (no task is silently lost; the other workers notice the
/// panic and bail out at their next dequeue).
pub fn scatter<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    scatter_observed(threads, items, f, None)
}

/// [`scatter`] with optional pool observability: when `trace` is given,
/// every task execution, successful steal sweep and terminal idle sweep
/// is recorded as a [`PoolSpan`] (tagged with its worker index), ready to
/// be replayed into a profiler after the join barrier. With `trace =
/// None` this is exactly [`scatter`] — no timestamps are taken.
pub fn scatter_observed<T, R, F>(
    threads: usize,
    items: Vec<T>,
    f: F,
    trace: Option<&PoolTrace>,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    scatter_instrumented(threads, items, f, trace, None)
}

/// [`scatter_observed`] with an additional *live* observability channel:
/// when `gauges` is given, queue depth, per-worker task/steal/idle
/// counts and completion progress are published through relaxed atomics
/// **while the workers run** — a sampler thread on another core can
/// watch the scatter progress in real time, which the post-join
/// [`PoolTrace`] replay cannot provide.
pub fn scatter_instrumented<T, R, F>(
    threads: usize,
    items: Vec<T>,
    f: F,
    trace: Option<&PoolTrace>,
    gauges: Option<&PoolGauges>,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        if let Some(g) = gauges {
            g.begin(n, 1);
        }
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let start = trace.map(|_| Instant::now());
                let r = f(i, t);
                if let (Some(tr), Some(start)) = (trace, start) {
                    tr.record(PoolSpan {
                        worker: 0,
                        task: i,
                        kind: PoolSpanKind::Task,
                        start,
                        dur: start.elapsed(),
                    });
                }
                if let Some(g) = gauges {
                    g.task_done(0);
                }
                r
            })
            .collect();
    }
    let workers = threads.min(n);
    if let Some(g) = gauges {
        g.begin(n, workers);
    }
    let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, t) in items.into_iter().enumerate() {
        lock(&queues[i % workers]).push_back((i, t));
    }
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let panicked: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    {
        let queues = &queues;
        let results = &results;
        let f = &f;
        let panicked = &panicked;
        std::thread::scope(|scope| {
            for me in 1..workers {
                scope.spawn(move || run_worker(me, queues, results, f, panicked, trace, gauges));
            }
            run_worker(0, queues, results, f, panicked, trace, gauges);
        });
    }
    if let Some(payload) = lock(&panicked).take() {
        resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|slot| {
            lock(&slot)
                .take()
                .expect("every scattered task produces exactly one result")
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_worker<T, R, F>(
    me: usize,
    queues: &[Mutex<VecDeque<(usize, T)>>],
    results: &[Mutex<Option<R>>],
    f: &F,
    panicked: &Mutex<Option<Box<dyn Any + Send>>>,
    trace: Option<&PoolTrace>,
    gauges: Option<&PoolGauges>,
) where
    F: Fn(usize, T) -> R,
{
    let workers = queues.len();
    loop {
        // Another worker's task panicked: the scatter is aborted anyway,
        // so stop pulling work.
        if lock(panicked).is_some() {
            return;
        }
        // Own deque first (front: submission order), then one steal sweep
        // over the neighbours (back: the work least likely to be touched
        // by its owner soon). The own-deque guard must drop before the
        // sweep starts — holding it while locking a neighbour's deque
        // would let two workers deadlock on each other's queues.
        let own = lock(&queues[me]).pop_front();
        let task = match own {
            Some(t) => Some(t),
            None => {
                let sweep_start = trace.map(|_| Instant::now());
                let stolen =
                    (1..workers).find_map(|d| lock(&queues[(me + d) % workers]).pop_back());
                if let (Some(tr), Some(start)) = (trace, sweep_start) {
                    tr.record(PoolSpan {
                        worker: me as u32,
                        task: 0,
                        kind: if stolen.is_some() {
                            PoolSpanKind::Steal
                        } else {
                            PoolSpanKind::Idle
                        },
                        start,
                        dur: start.elapsed(),
                    });
                }
                if let Some(g) = gauges {
                    if stolen.is_some() {
                        g.stole(me);
                    } else {
                        g.idled(me);
                    }
                }
                stolen
            }
        };
        match task {
            Some((i, t)) => {
                let task_start = trace.map(|_| Instant::now());
                match catch_unwind(AssertUnwindSafe(|| f(i, t))) {
                    Ok(r) => {
                        if let (Some(tr), Some(start)) = (trace, task_start) {
                            tr.record(PoolSpan {
                                worker: me as u32,
                                task: i,
                                kind: PoolSpanKind::Task,
                                start,
                                dur: start.elapsed(),
                            });
                        }
                        if let Some(g) = gauges {
                            g.task_done(me);
                        }
                        *lock(&results[i]) = Some(r);
                    }
                    Err(payload) => {
                        let mut slot = lock(panicked);
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                        return;
                    }
                }
            }
            // All deques empty: the task set is static, so nothing new
            // can ever appear — exit instead of spinning.
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scatter_preserves_submission_order() {
        for threads in [1, 2, 4, 7, 64] {
            let items: Vec<usize> = (0..37).collect();
            let out = scatter(threads, items, |i, x| {
                assert_eq!(i, x);
                x * 10
            });
            assert_eq!(out, (0..37).map(|x| x * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scatter_handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(scatter(4, empty, |_, x: u32| x).is_empty());
        assert_eq!(scatter(4, vec![9u32], |i, x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn scatter_runs_every_task_exactly_once() {
        let counter = AtomicU64::new(0);
        let out = scatter(5, (0..100u64).collect(), |_, x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.iter().sum::<u64>(), 4950);
    }

    #[test]
    fn panics_propagate_instead_of_hanging() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            scatter(4, (0..64usize).collect(), |_, x| {
                if x == 13 {
                    panic!("boom from task 13");
                }
                x
            })
        }));
        let err = result.expect_err("task panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("boom"), "unexpected panic payload: {msg:?}");
    }

    #[test]
    fn panics_propagate_from_sequential_path_too() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            scatter(1, vec![0usize], |_, _| -> usize { panic!("seq boom") })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn observed_scatter_records_one_task_span_per_item() {
        for threads in [1, 4] {
            let trace = PoolTrace::new();
            let out = scatter_observed(threads, (0..23usize).collect(), |_, x| x, Some(&trace));
            assert_eq!(out.len(), 23);
            let spans = trace.into_spans();
            let mut task_ids: Vec<usize> = spans
                .iter()
                .filter(|s| s.kind == PoolSpanKind::Task)
                .map(|s| s.task)
                .collect();
            task_ids.sort_unstable();
            assert_eq!(task_ids, (0..23).collect::<Vec<_>>());
            // Spans come back grouped by worker, chronologically within
            // each worker, so a profiler can replay them track by track.
            for pair in spans.windows(2) {
                assert!(pair[0].worker < pair[1].worker || pair[0].start <= pair[1].start);
            }
            if threads > 1 {
                // Every spawned worker ends with an empty (idle) sweep.
                assert!(spans.iter().any(|s| s.kind == PoolSpanKind::Idle));
            }
        }
    }

    #[test]
    fn gauges_count_every_task_once() {
        for threads in [1, 4] {
            let gauges = PoolGauges::new();
            let out = scatter_instrumented(
                threads,
                (0..23usize).collect(),
                |_, x| x,
                None,
                Some(&gauges),
            );
            assert_eq!(out.len(), 23);
            let snap = gauges.snapshot();
            assert_eq!(snap.total, 23);
            assert_eq!(snap.completed, 23);
            assert_eq!(snap.tasks(), 23);
            assert_eq!(snap.scatters, 1);
            assert!(snap.workers >= 1);
            if threads > 1 {
                // Every spawned worker's terminal sweep is an idle.
                assert!(snap.idles() >= 1);
            }
        }
    }

    #[test]
    fn gauges_accumulate_across_scatters() {
        let gauges = PoolGauges::new();
        scatter_instrumented(2, (0..5usize).collect(), |_, x| x, None, Some(&gauges));
        scatter_instrumented(2, (0..7usize).collect(), |_, x| x, None, Some(&gauges));
        let snap = gauges.snapshot();
        assert_eq!(snap.total, 12);
        assert_eq!(snap.completed, 12);
        assert_eq!(snap.scatters, 2);
    }

    #[test]
    fn gauges_fold_excess_workers_into_last_slot() {
        let gauges = PoolGauges::new();
        // Worker indices past the cap must not panic and must still count.
        gauges.task_done(MAX_TRACKED_WORKERS + 5);
        gauges.stole(MAX_TRACKED_WORKERS + 5);
        gauges.idled(MAX_TRACKED_WORKERS + 5);
        gauges.begin(1, MAX_TRACKED_WORKERS + 6);
        let snap = gauges.snapshot();
        assert_eq!(snap.per_worker.len(), MAX_TRACKED_WORKERS);
        let last = snap.per_worker.last().unwrap();
        assert_eq!((last.tasks, last.steals, last.idles), (1, 1, 1));
    }

    #[test]
    fn pool_span_kind_names_are_stable() {
        assert_eq!(PoolSpanKind::Task.name(), "task");
        assert_eq!(PoolSpanKind::Steal.name(), "steal");
        assert_eq!(PoolSpanKind::Idle.name(), "idle");
    }

    #[test]
    fn chunk_sizes_edge_cases() {
        assert!(chunk_sizes(0, 4).is_empty());
        assert!(chunk_sizes(10, 0).is_empty());
        assert_eq!(chunk_sizes(10, 3), vec![4, 3, 3]);
        assert_eq!(chunk_sizes(3, 10), vec![1, 1, 1]);
        assert_eq!(chunk_sizes(8, 4), vec![2, 2, 2, 2]);
    }

    #[test]
    fn mix_seed_depends_on_both_inputs() {
        assert_ne!(mix_seed(1, 0), mix_seed(1, 1));
        assert_ne!(mix_seed(0, 7), mix_seed(1, 7));
        assert_eq!(mix_seed(42, 3), mix_seed(42, 3));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary task-set sizes and worker counts: no task is lost or
        /// duplicated under stealing, and results stay in order.
        #[test]
        fn no_loss_no_duplication(
            n in 0usize..200,
            threads in 1usize..16,
        ) {
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            let out = scatter(threads, (0..n).collect(), |i, x| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                prop_assert_eq!(i, x);
                Ok(x)
            });
            prop_assert_eq!(out.len(), n);
            for (i, r) in out.into_iter().enumerate() {
                prop_assert_eq!(r?, i);
            }
            for h in &hits {
                prop_assert_eq!(h.load(Ordering::Relaxed), 1);
            }
        }

        /// Chunk sizes always partition the total into near-equal parts.
        #[test]
        fn chunks_partition_the_total(total in 0usize..10_000, parts in 0usize..64) {
            let chunks = chunk_sizes(total, parts);
            if total > 0 && parts > 0 {
                prop_assert_eq!(chunks.iter().sum::<usize>(), total);
                prop_assert!(chunks.len() == parts.min(total));
                let (min, max) = (chunks.iter().min().unwrap(), chunks.iter().max().unwrap());
                prop_assert!(max - min <= 1);
                prop_assert!(*min >= 1);
            } else {
                prop_assert!(chunks.is_empty());
            }
        }
    }
}
