//! The `ProbFC` depth-first miner (Fig. 3 of the paper).
//!
//! Depth-first enumeration over the prefix tree of itemsets in item
//! ("alphabetic") order, with the four prunings of Section IV:
//!
//! 1. **Chernoff–Hoeffding pruning** (Lemma 4.1): a cheap tail bound
//!    refutes probabilistic frequency before the exact DP runs. Together
//!    with the exact `Pr_F ≤ pfct` test it cuts whole subtrees, because
//!    the frequent probability is anti-monotone and dominates the FCP.
//! 2. **Superset pruning** (Lemma 4.2): if a *pre-item* (an item ordered
//!    before some item of `X`, hence outside `X`'s prefix subtree) occurs
//!    in every transaction of `T(X)`, then `X` and its entire prefix
//!    subtree are non-closed in every world — `Pr_FC ≡ 0`.
//! 3. **Subset pruning** (Lemma 4.3): if an extension `X∪e` has the same
//!    count as `X`, then `X` is never closed, and every sibling subtree
//!    after `e` (none of which can contain `e`) is non-closed too; only
//!    the `X∪e` branch continues.
//! 4. **Probability-bound pruning** (Lemma 4.4) and the final checking
//!    phase, shared with the BFS framework via the internal evaluator.
//!
//! # Incremental support DP
//!
//! A DFS child differs from its parent by the transactions dropped at the
//! extension step: `T(X∪e) ⊆ T(X)`. The frequentness DP row is a product
//! of per-transaction factors, so instead of rebuilding it over `T(X∪e)`
//! from scratch, the miner *downdates* the parent's [`TailDp`] row by
//! dividing out each dropped transaction's probability — `O(dropped ·
//! min_sup)` instead of `O(|T(X∪e)| · min_sup)`. Each row carries a
//! measured per-element error bound maintained through compensated
//! deconvolution (with a log-domain fallback for high-amplification
//! factors — see [`TailDp::try_remove`]); a removal is refused (and the
//! row rebuilt) only when that bound exceeds the configured tolerance
//! ([`MinerConfig::dp_error_tol`], resolved through
//! [`MinerConfig::effective_dp_error_tol`]) or after `MAX_DOWNDATES`
//! accumulated removals. The [`crate::stats::KernelStats`] counters
//! report which path each node took. Both paths are deterministic
//! functions of the node alone, so parallel fan-out stays bit-identical
//! across thread counts. Per-node state (tid-bitmaps, DP rows) lives in
//! a free-list arena reset per subtree root, so steady-state enumeration
//! allocates nothing.

use std::time::Instant;

use prob::hoeffding::hoeffding_infrequent;
use prob::{RemovalRefusal, TailDp};
use utdb::{Item, TidBitmap, UncertainDatabase};

use crate::config::{MinerConfig, SearchStrategy};
use crate::evaluator::Evaluator;
use crate::par;
use crate::result::{MiningOutcome, Pfci};
use crate::stats::{DpAudit, KernelStats, MinerStats, PhaseTimers};
use crate::trace::{
    timed, DpDecision, MinerSink, NullSink, Phase, PruneKind, ShardableSink, ShardedSink,
};

/// Hard cap on downdates accumulated in one [`TailDp`] row before the
/// miner forces a rebuild. The row's own measured error bound already
/// gates every removal against [`MinerConfig::dp_error_tol`], so this is
/// a belt-and-suspenders limit on how long a chain the audit has to
/// reason about, not the primary stability control.
const MAX_DOWNDATES: u32 = 256;

/// Mine all probabilistic frequent closed itemsets with the configured
/// search strategy.
#[deprecated(note = "use the `crate::miner::Miner` builder instead")]
pub fn mine(db: &UncertainDatabase, config: &MinerConfig) -> MiningOutcome {
    run_search(db, config, &mut NullSink)
}

/// [`mine`], observed by `sink` (see [`crate::trace`]).
///
/// The DFS path can fan out over worker threads
/// ([`MinerConfig::threads`]), so the sink must be [`ShardableSink`];
/// every provided sink (and their `Tee`/`Option`/`&mut` compositions)
/// is.
#[deprecated(note = "use `crate::miner::Miner::sink(…)` instead")]
pub fn mine_with<S: ShardableSink + ?Sized>(
    db: &UncertainDatabase,
    config: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    run_search(db, config, sink)
}

/// The depth-first `ProbFC` algorithm.
#[deprecated(note = "use `crate::miner::Miner` with `Algorithm::Dfs` instead")]
pub fn mine_dfs(db: &UncertainDatabase, config: &MinerConfig) -> MiningOutcome {
    run_dfs(db, config, &mut NullSink)
}

/// [`mine_dfs`], observed by `sink` (see [`crate::trace`]).
#[deprecated(note = "use `crate::miner::Miner` with `Algorithm::Dfs` and `sink(…)` instead")]
pub fn mine_dfs_with<S: ShardableSink + ?Sized>(
    db: &UncertainDatabase,
    config: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    run_dfs(db, config, sink)
}

/// Dispatch on the configured search strategy — the engine behind the
/// [`crate::miner::Miner`] builder and the deprecated free functions.
pub(crate) fn run_search<S: ShardableSink + ?Sized>(
    db: &UncertainDatabase,
    config: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    match config.search {
        SearchStrategy::Dfs => run_dfs(db, config, sink),
        SearchStrategy::Bfs => crate::bfs::run_bfs(db, config, sink),
    }
}

/// The depth-first miner proper.
///
/// With [`MinerConfig::effective_threads`] > 1, the first-level subtree
/// roots fan out over a work-stealing pool ([`crate::par`]); results,
/// stats, timers and sink shards are merged deterministically in
/// canonical item order at the join barrier. Exact-mode output is
/// bit-identical to the sequential run for every thread count;
/// sampled-mode output is a pure function of `(seed, threads)` (and in
/// fact of `seed` alone for any `threads ≥ 2`, since each root owns a
/// seed-derived RNG stream). `threads = 1` runs the legacy sequential
/// code byte-identically.
pub(crate) fn run_dfs<S: ShardableSink + ?Sized>(
    db: &UncertainDatabase,
    config: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    config.validate();
    let threads = config.effective_threads();
    if threads <= 1 {
        return mine_dfs_sequential(db, config, sink);
    }
    mine_dfs_parallel(db, config, sink, threads)
}

/// The pre-parallelism single-threaded miner, byte-for-byte.
fn mine_dfs_sequential<S: MinerSink + ?Sized>(
    db: &UncertainDatabase,
    config: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    sink.run_started("dfs", config);
    let start = Instant::now();
    let deadline = config.time_budget.map(|b| start + b);
    let mut miner = DfsMiner {
        evaluator: Evaluator::new(db, config, sink),
        dropped: Vec::new(),
        arena: NodeArena::default(),
        items: Vec::new(),
        results: Vec::new(),
        deadline,
        timed_out: false,
    };

    // Phase 1 (Fig. 1): candidate set of probabilistic frequent single
    // items; each then roots a depth-first enumeration.
    for id in 0..db.num_items() as u32 {
        miner.mine_root(Item(id));
    }

    let DfsMiner {
        evaluator,
        mut results,
        timed_out,
        ..
    } = miner;
    let Evaluator {
        stats,
        kernel,
        timers,
        audit,
        sink,
        ..
    } = evaluator;
    results.sort_by(|a, b| a.items.cmp(&b.items));
    let outcome = MiningOutcome {
        results,
        stats,
        kernel,
        timers,
        audit,
        elapsed: start.elapsed(),
        timed_out,
    };
    sink.run_finished(&outcome);
    outcome
}

/// First-level fan-out: each root item's subtree is one task on the
/// work-stealing pool, observed through a private sink shard. The
/// barrier then reconciles shards/results/stats/timers in root-id order,
/// so aggregate sinks see exactly the sequential event stream (in exact
/// mode) and the result set is sorted identically to the sequential
/// path.
fn mine_dfs_parallel<S: ShardableSink + ?Sized>(
    db: &UncertainDatabase,
    config: &MinerConfig,
    sink: &mut S,
    threads: usize,
) -> MiningOutcome {
    sink.run_started("dfs", config);
    let start = Instant::now();
    let deadline = config.time_budget.map(|b| start + b);
    // Workers run the sequential evaluator (no nested fan-out); each
    // root derives its own RNG stream from the run seed, making sampled
    // estimates independent of scheduling and of the worker count.
    let worker_cfg = config.clone().with_threads(1);

    let mut sharded = ShardedSink::new(sink);
    let roots: Vec<(u32, S::Shard)> = (0..db.num_items() as u32)
        .map(|id| (id, sharded.shard()))
        .collect();

    // Pool spans (task/steal/idle per worker) are only worth their
    // timestamps when some sink will consume them.
    let pool = sharded.parent().is_enabled().then(par::PoolTrace::new);
    // Live pool gauges (queue depth, per-worker counters) for sinks that
    // watch the run from another thread — e.g. the telemetry sampler.
    let gauges = sharded.parent().pool_gauges();

    let worker_cfg = &worker_cfg;
    let per_root = par::scatter_instrumented(
        threads,
        roots,
        |_, (id, mut shard)| {
            let mut cfg = worker_cfg.clone();
            cfg.seed = par::mix_seed(worker_cfg.seed, u64::from(id));
            let mut miner = DfsMiner {
                evaluator: Evaluator::new(db, &cfg, &mut shard),
                dropped: Vec::new(),
                arena: NodeArena::default(),
                items: Vec::new(),
                results: Vec::new(),
                deadline,
                timed_out: false,
            };
            miner.mine_root(Item(id));
            let DfsMiner {
                evaluator,
                results,
                timed_out,
                ..
            } = miner;
            let Evaluator {
                stats,
                kernel,
                timers,
                audit,
                ..
            } = evaluator;
            (shard, results, stats, kernel, timers, audit, timed_out)
        },
        pool.as_ref(),
        gauges.as_deref(),
    );

    let mut stats = MinerStats::default();
    let mut kernel = KernelStats::default();
    let mut timers = PhaseTimers::default();
    let mut audit = DpAudit::default();
    let mut results = Vec::new();
    let mut timed_out = false;
    for (shard, root_results, root_stats, root_kernel, root_timers, root_audit, root_timed_out) in
        per_root
    {
        sharded.absorb(shard);
        stats.absorb(&root_stats);
        kernel.absorb(&root_kernel);
        timers.absorb(&root_timers);
        audit.absorb(&root_audit);
        results.extend(root_results);
        timed_out |= root_timed_out;
    }
    if let Some(pool) = pool {
        for span in pool.into_spans() {
            sharded.parent().pool_span(&span);
        }
    }
    results.sort_by(|a, b| a.items.cmp(&b.items));
    let outcome = MiningOutcome {
        results,
        stats,
        kernel,
        timers,
        audit,
        elapsed: start.elapsed(),
        timed_out,
    };
    sharded.parent().run_finished(&outcome);
    outcome
}

/// Everything the DFS carries per enumeration node: the tid-set bitmap,
/// the live frequentness DP row over its transactions, the expected
/// support, and the exact frequent probability — the state children
/// derive from incrementally.
struct NodeCtx {
    tids: TidBitmap,
    dp: TailDp,
    esup: f64,
    pr_f: f64,
}

/// Free-list arena for per-node DFS state: tid-bitmaps and DP rows are
/// recycled as the enumeration backtracks instead of being reallocated
/// at every node, and the whole pool is reset at each subtree root. The
/// recycling kernels ([`TidBitmap::and_into`], [`TailDp::clone_from`])
/// overwrite every word/element of a reused buffer, so recycled state
/// never leaks into a node's result — the parallel determinism contract
/// (bit-identical output across thread counts) is preserved.
#[derive(Default)]
struct NodeArena {
    bitmaps: Vec<TidBitmap>,
    rows: Vec<TailDp>,
}

impl NodeArena {
    /// A bitmap buffer for `and_into` to (re)shape and fill.
    fn take_bitmap(&mut self) -> TidBitmap {
        self.bitmaps.pop().unwrap_or_else(|| TidBitmap::new(0))
    }

    /// A DP row with threshold `k`, ready for `clone_from` or `rebuild`.
    fn take_dp(&mut self, k: usize) -> TailDp {
        match self.rows.pop() {
            Some(dp) if dp.threshold() == k => dp,
            _ => TailDp::new(k),
        }
    }

    /// Return a finished node's buffers to the pool.
    fn recycle(&mut self, ctx: NodeCtx) {
        self.bitmaps.push(ctx.tids);
        self.rows.push(ctx.dp);
    }

    /// Return loose buffers to the pool.
    fn recycle_parts(&mut self, tids: TidBitmap, dp: TailDp) {
        self.bitmaps.push(tids);
        self.rows.push(dp);
    }

    /// Drop everything — called at each subtree root so pool size stays
    /// bounded by one subtree's depth.
    fn reset(&mut self) {
        self.bitmaps.clear();
        self.rows.clear();
    }
}

struct DfsMiner<'a, S: MinerSink + ?Sized> {
    evaluator: Evaluator<'a, S>,
    /// Scratch for the dropped transactions' probabilities at each
    /// extension step (reused across nodes, no per-node allocation).
    dropped: Vec<f64>,
    /// Recycled per-node tid-bitmaps and DP rows (reset per root).
    arena: NodeArena,
    /// The current itemset prefix (reused across roots).
    items: Vec<Item>,
    results: Vec<Pfci>,
    deadline: Option<Instant>,
    timed_out: bool,
}

impl<S: MinerSink + ?Sized> DfsMiner<'_, S> {
    /// Qualify `item` as a subtree root and, when it survives, mine its
    /// whole depth-first subtree. One call per database item; both the
    /// sequential and the parallel driver funnel through here so the two
    /// paths perform identical per-root work.
    fn mine_root(&mut self, item: Item) {
        self.arena.reset();
        let tids = self.evaluator.db.bitmap_of(item).clone();
        if let Some(ctx) = self.qualify_root(tids) {
            let mut items = std::mem::take(&mut self.items);
            items.clear();
            items.push(item);
            self.process_node(&mut items, &ctx);
            self.items = items;
            self.arena.recycle(ctx);
        }
    }

    /// Is the root itemset with tid-set `tids` a probabilistic frequent
    /// itemset? Builds the DP row from scratch (roots have no parent to
    /// downdate from). Applies the Chernoff–Hoeffding refutation first
    /// when enabled.
    fn qualify_root(&mut self, tids: TidBitmap) -> Option<NodeCtx> {
        let db = self.evaluator.db;
        let cfg = self.evaluator.cfg;
        let count = tids.count();
        if count < cfg.min_sup {
            return None;
        }
        let esup: f64 = tids.iter().map(|tid| db.probability(tid)).sum();
        if !self.check_chernoff(esup, count) {
            return None;
        }
        self.evaluator.stats.freq_prob_evals += 1;
        let kernel = &mut self.evaluator.kernel;
        let min_sup = cfg.min_sup;
        let tids_ref = &tids;
        let dp = timed(
            Phase::FreqDp,
            &mut self.evaluator.timers,
            &mut *self.evaluator.sink,
            || {
                kernel.dp_recomputed += 1;
                let mut dp = TailDp::new(min_sup);
                for tid in tids_ref.iter() {
                    dp.push(db.probability(tid));
                }
                dp
            },
        );
        self.evaluator.audit.record(DpDecision::FreshRoot);
        self.evaluator.sink.dp_decision(DpDecision::FreshRoot);
        self.finish_qualify(tids, dp, esup)
    }

    /// Qualify a DFS child against its parent's node context. The dropped
    /// transactions `T(X) \ T(X∪e)` are streamed word-level from the two
    /// bitmaps; the DP row is downdated from the parent's when that is
    /// both cheaper than a rebuild and numerically safe.
    fn qualify_child(&mut self, parent: &NodeCtx, tids: TidBitmap) -> Option<NodeCtx> {
        let db = self.evaluator.db;
        let cfg = self.evaluator.cfg;
        let count = tids.count();
        if count < cfg.min_sup {
            self.arena.bitmaps.push(tids);
            return None;
        }
        self.dropped.clear();
        for tid in parent.tids.diff_iter(&tids) {
            self.dropped.push(db.probability(tid));
        }
        self.evaluator.kernel.bitmap_words += parent.tids.word_len() as u64;
        let mut esup = (parent.esup - self.dropped.iter().sum::<f64>()).max(0.0);
        if !self.check_chernoff(esup, count) {
            self.arena.bitmaps.push(tids);
            return None;
        }
        self.evaluator.stats.freq_prob_evals += 1;

        let kernel = &mut self.evaluator.kernel;
        let tol = cfg.effective_dp_error_tol();
        let dropped = &self.dropped;
        let tids_ref = &tids;
        let esup_ref = &mut esup;
        let mut pooled = self.arena.take_dp(cfg.min_sup);
        let (dp, decision) = timed(
            Phase::FreqDp,
            &mut self.evaluator.timers,
            &mut *self.evaluator.sink,
            || {
                // Downdate when it is cheaper than a rebuild and every
                // removal's measured error bound fits the tolerance;
                // otherwise rebuild, recording the structured reason for
                // the audit channel.
                let removals = dropped.len() as u32;
                let decision = if dropped.len() >= count {
                    DpDecision::CostSkip
                } else if parent.dp.removals() + removals > MAX_DOWNDATES {
                    DpDecision::DowndateCap
                } else {
                    pooled.clone_from(&parent.dp);
                    let mut refusal = None;
                    for &p in dropped.iter() {
                        if let Err(r) = pooled.try_remove_explained(p, tol) {
                            refusal = Some(r);
                            break;
                        }
                    }
                    match refusal {
                        None => {
                            kernel.dp_incremental += 1;
                            return (pooled, DpDecision::Incremental);
                        }
                        Some(RemovalRefusal::ErrTol { measured }) => {
                            DpDecision::ErrTol { measured }
                        }
                        Some(RemovalRefusal::RowValidation { violation }) => {
                            DpDecision::RowValidation { violation }
                        }
                        Some(RemovalRefusal::Empty | RemovalRefusal::Degenerate) => {
                            DpDecision::Degenerate
                        }
                    }
                };
                kernel.dp_recomputed += 1;
                pooled.rebuild(std::iter::empty());
                let mut fresh_esup = 0.0;
                for tid in tids_ref.iter() {
                    let p = db.probability(tid);
                    fresh_esup += p;
                    pooled.push(p);
                }
                // The rebuild touches every remaining probability anyway:
                // refresh the expected support to stop incremental drift.
                *esup_ref = fresh_esup;
                (pooled, decision)
            },
        );
        self.evaluator.audit.record(decision);
        self.evaluator.sink.dp_decision(decision);
        self.finish_qualify(tids, dp, esup)
    }

    /// Chernoff–Hoeffding refutation (Lemma 4.1); `true` means "survives".
    fn check_chernoff(&mut self, esup: f64, count: usize) -> bool {
        let cfg = self.evaluator.cfg;
        if !cfg.pruning.chernoff_hoeffding {
            return true;
        }
        let refuted = timed(
            Phase::ChBound,
            &mut self.evaluator.timers,
            &mut *self.evaluator.sink,
            || hoeffding_infrequent(esup, count, cfg.min_sup, cfg.pfct),
        );
        if refuted {
            self.evaluator.stats.ch_pruned += 1;
            self.evaluator
                .sink
                .prune_fired(PruneKind::ChernoffHoeffding);
            return false;
        }
        true
    }

    /// Shared tail of qualification: read the frequent probability off the
    /// DP row and apply the exact `Pr_F ≤ pfct` pruning.
    fn finish_qualify(&mut self, tids: TidBitmap, dp: TailDp, esup: f64) -> Option<NodeCtx> {
        let cfg = self.evaluator.cfg;
        let pr_f = dp.tail();
        self.evaluator.sink.freq_prob_evaluated(pr_f);
        if pr_f <= cfg.pfct {
            self.evaluator.stats.freq_pruned += 1;
            self.evaluator.sink.prune_fired(PruneKind::FreqProb);
            self.arena.recycle_parts(tids, dp);
            return None;
        }
        Some(NodeCtx {
            tids,
            dp,
            esup,
            pr_f,
        })
    }

    /// Process the enumeration node for itemset `items` (which is known to
    /// be a probabilistic frequent itemset with node context `ctx`):
    /// apply superset pruning, grow extensions with subset pruning, then
    /// run the checking phase on `items` itself.
    fn process_node(&mut self, items: &mut Vec<Item>, ctx: &NodeCtx) {
        if self.timed_out {
            return;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.timed_out = true;
                return;
            }
        }
        let db = self.evaluator.db;
        let cfg = self.evaluator.cfg;
        self.evaluator.stats.nodes_visited += 1;
        self.evaluator.sink.node_entered(items.len());
        let words = ctx.tids.word_len() as u64;

        // --- Superset pruning (Lemma 4.2) --------------------------------
        if cfg.pruning.superset {
            let last = items.last().expect("nodes carry non-empty itemsets").0;
            for pre_id in 0..last {
                let pre = Item(pre_id);
                if items.binary_search(&pre).is_ok() {
                    continue;
                }
                self.evaluator.kernel.bitmap_words += words;
                if ctx.tids.is_subset(db.bitmap_of(pre)) {
                    // X and every superset with X as prefix appear only
                    // together with `pre`: the whole subtree is dead.
                    self.evaluator.stats.superset_pruned += 1;
                    self.evaluator.sink.prune_fired(PruneKind::Superset);
                    return;
                }
            }
        }

        // --- Extension loop with subset pruning (Lemma 4.3) ---------------
        let mut x_closed = true;
        let count = ctx.tids.count();
        let last = items.last().expect("non-empty").0;
        for ext_id in last + 1..db.num_items() as u32 {
            let ext = Item(ext_id);
            self.evaluator.kernel.bitmap_words += words;
            let child_count = ctx.tids.and_count(db.bitmap_of(ext));
            if child_count == 0 {
                continue;
            }
            let carries_support = cfg.pruning.subset && child_count == count;
            if !carries_support && child_count < cfg.min_sup {
                continue; // qualification would reject it without a DP
            }
            self.evaluator.kernel.bitmap_words += words;
            let mut child_tids = self.arena.take_bitmap();
            ctx.tids.and_into(db.bitmap_of(ext), &mut child_tids);
            if carries_support {
                // X∪ext always accompanies X: X is never closed, and the
                // remaining sibling subtrees (which cannot contain `ext`)
                // are never closed either — only this branch survives.
                self.evaluator.stats.subset_pruned += 1;
                self.evaluator.sink.prune_fired(PruneKind::Subset);
                x_closed = false;
                // T(X∪ext) = T(X): tid-set, DP row, expected support and
                // frequent probability all carry over unchanged.
                let mut dp = self.arena.take_dp(cfg.min_sup);
                dp.clone_from(&ctx.dp);
                let child_ctx = NodeCtx {
                    tids: child_tids,
                    dp,
                    esup: ctx.esup,
                    pr_f: ctx.pr_f,
                };
                items.push(ext);
                self.process_node(items, &child_ctx);
                items.pop();
                self.arena.recycle(child_ctx);
                break;
            }
            if let Some(child_ctx) = self.qualify_child(ctx, child_tids) {
                items.push(ext);
                self.process_node(items, &child_ctx);
                items.pop();
                self.arena.recycle(child_ctx);
            }
        }

        // --- Checking phase for X itself -----------------------------------
        if !x_closed {
            return;
        }
        if let Some(pfci) = self.evaluator.evaluate(items, &ctx.tids, ctx.pr_f) {
            self.results.push(pfci);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::exact::exact_pfci_set;

    fn table2() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
        ])
    }

    fn table4() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
            ("a b", 0.4),
            ("a", 0.4),
        ])
    }

    fn dfs(db: &UncertainDatabase, cfg: &MinerConfig) -> MiningOutcome {
        run_dfs(db, cfg, &mut NullSink)
    }

    #[test]
    fn running_example_result_set_and_values() {
        let db = table2();
        let out = dfs(&db, &MinerConfig::new(2, 0.8));
        let rendered: Vec<String> = out.results.iter().map(|p| p.render(&db)).collect();
        assert_eq!(rendered.len(), 2, "{rendered:?}");
        assert!(rendered[0].starts_with("{a, b, c}:"));
        assert!(rendered[1].starts_with("{a, b, c, d}:"));
        assert!((out.fcp_of(&out.results[0].items).unwrap() - 0.8754).abs() < 0.01);
        assert!((out.fcp_of(&out.results[1].items).unwrap() - 0.81).abs() < 0.01);
    }

    #[test]
    fn matches_exact_oracle_on_small_databases() {
        for (db, min_sup, pfct) in [
            (table2(), 2, 0.8),
            (table2(), 2, 0.5),
            (table2(), 1, 0.8),
            (table2(), 3, 0.3),
            (table4(), 2, 0.8),
            (table4(), 2, 0.6),
            (table4(), 1, 0.9),
        ] {
            let oracle = exact_pfci_set(&db, min_sup, pfct);
            let cfg = MinerConfig::new(min_sup, pfct)
                .with_fcp_method(crate::config::FcpMethod::ExactOnly);
            let out = dfs(&db, &cfg);
            assert_eq!(
                out.itemsets(),
                oracle.iter().map(|p| p.items.clone()).collect::<Vec<_>>(),
                "min_sup={min_sup} pfct={pfct}"
            );
            for (got, want) in out.results.iter().zip(&oracle) {
                assert!(
                    (got.fcp - want.fcp).abs() < 1e-6,
                    "{:?}: {} vs {}",
                    got.items,
                    got.fcp,
                    want.fcp
                );
            }
        }
    }

    #[test]
    fn all_variants_agree_on_the_result_set() {
        let db = table4();
        let base = MinerConfig::new(2, 0.8).with_fcp_method(crate::config::FcpMethod::ExactOnly);
        let reference = run_search(&db, &base, &mut NullSink).itemsets();
        for variant in Variant::ALL {
            let cfg = base.clone().with_variant(variant);
            let out = run_search(&db, &cfg, &mut NullSink);
            assert_eq!(out.itemsets(), reference, "{}", variant.name());
        }
    }

    #[test]
    fn pruning_counters_fire_on_the_running_example() {
        let db = table2();
        let out = dfs(&db, &MinerConfig::new(2, 0.8));
        // Example 4.3: subset pruning stops {ab}'s siblings, superset
        // pruning stops {b}, {c}, {d} roots.
        assert!(out.stats.subset_pruned > 0);
        assert!(out.stats.superset_pruned > 0);
        assert!(out.stats.nodes_visited >= 4);
    }

    #[test]
    fn kernel_counters_fire_on_the_running_example() {
        let db = table4();
        let out = dfs(&db, &MinerConfig::new(2, 0.8));
        // Every root that reaches the DP rebuilds; children downdate.
        assert!(out.kernel.dp_recomputed > 0, "{}", out.kernel);
        assert!(out.kernel.dp_incremental > 0, "{}", out.kernel);
        assert!(out.kernel.bitmap_words > 0, "{}", out.kernel);
        assert_eq!(out.kernel.dp_rows(), out.stats.freq_prob_evals);
    }

    #[test]
    fn incremental_dp_matches_forced_recompute_exactly() {
        // dp_error_tol = 0 accepts only provably exact downdates, forcing
        // rebuilds everywhere else; the default 1e-9 accepts most. The
        // mined probabilities must agree to well under the suite's 1e-9
        // tolerance either way.
        let db = table4();
        let base = MinerConfig::new(2, 0.6).with_fcp_method(crate::config::FcpMethod::ExactOnly);
        let incremental = dfs(&db, &base);
        let rebuilt = dfs(&db, &base.clone().with_dp_error_tol(0.0));
        assert!(incremental.kernel.dp_incremental > 0);
        assert!(rebuilt.kernel.dp_recomputed >= incremental.kernel.dp_recomputed);
        assert!(
            rebuilt.audit.err_tol > 0,
            "zero tolerance must refuse inexact downdates: {}",
            rebuilt.audit
        );
        assert_eq!(incremental.itemsets(), rebuilt.itemsets());
        for (a, b) in incremental.results.iter().zip(&rebuilt.results) {
            assert!((a.frequent_probability - b.frequent_probability).abs() < 1e-12);
            assert!((a.fcp - b.fcp).abs() < 1e-12);
        }
    }

    #[test]
    fn legacy_dp_stability_knob_still_gates() {
        // The deprecated dp_stability knob maps onto the tolerance axis
        // (strict 1.0 → 1e-11, loose 1e-6 → 1e-5); the result set must be
        // identical across the whole sweep.
        let db = table4();
        let base = MinerConfig::new(2, 0.6).with_fcp_method(crate::config::FcpMethod::ExactOnly);
        let reference = dfs(&db, &base);
        for stability in [1.0, 1e-2, 1e-6] {
            let out = dfs(&db, &base.clone().with_dp_stability(stability));
            assert_eq!(out.itemsets(), reference.itemsets(), "{stability}");
        }
        // An explicit dp_error_tol overrides the legacy knob.
        let cfg = base.clone().with_dp_stability(1e-6).with_dp_error_tol(0.0);
        assert_eq!(cfg.effective_dp_error_tol(), 0.0);
        let out = dfs(&db, &cfg);
        assert_eq!(out.itemsets(), reference.itemsets());
    }

    #[test]
    fn event_cache_toggle_is_bit_identical() {
        let db = table4();
        let base = MinerConfig::new(2, 0.8);
        let cached = dfs(&db, &base);
        let uncached = dfs(&db, &base.clone().with_event_cache_capacity(0));
        assert!(cached.kernel.bound_cache_misses > 0);
        assert_eq!(uncached.kernel.bound_cache_hits, 0);
        assert_eq!(uncached.kernel.bound_cache_misses, 0);
        assert_eq!(cached.results, uncached.results);
        assert_eq!(cached.stats, uncached.stats);
    }

    #[test]
    fn empty_database_and_high_thresholds() {
        let empty = UncertainDatabase::new(vec![], utdb::ItemDictionary::new());
        assert!(dfs(&empty, &MinerConfig::new(1, 0.5)).results.is_empty());

        let db = table2();
        assert!(dfs(&db, &MinerConfig::new(5, 0.5)).results.is_empty());
        assert!(dfs(&db, &MinerConfig::new(2, 0.999)).results.is_empty());
    }

    #[test]
    fn adaptive_sampling_method_agrees_with_exact() {
        let db = table4();
        let exact = dfs(
            &db,
            &MinerConfig::new(2, 0.8).with_fcp_method(crate::config::FcpMethod::ExactOnly),
        );
        let adaptive = dfs(
            &db,
            &MinerConfig::new(2, 0.8)
                .with_fcp_method(crate::config::FcpMethod::ApproxAdaptive)
                .with_approximation(0.05, 0.05),
        );
        assert_eq!(adaptive.itemsets(), exact.itemsets());
    }

    #[test]
    fn deterministic_across_runs() {
        let db = table4();
        let cfg = MinerConfig::new(2, 0.8);
        let a = dfs(&db, &cfg);
        let b = dfs(&db, &cfg);
        assert_eq!(a.results, b.results);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.kernel, b.kernel);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_mine() {
        let db = table2();
        let cfg = MinerConfig::new(2, 0.8);
        let via_wrapper = mine_dfs(&db, &cfg);
        let direct = dfs(&db, &cfg);
        assert_eq!(via_wrapper.results, direct.results);
        let dispatched = mine(&db, &cfg);
        assert_eq!(dispatched.results, direct.results);
    }
}
