//! The `ProbFC` depth-first miner (Fig. 3 of the paper).
//!
//! Depth-first enumeration over the prefix tree of itemsets in item
//! ("alphabetic") order, with the four prunings of Section IV:
//!
//! 1. **Chernoff–Hoeffding pruning** (Lemma 4.1): a cheap tail bound
//!    refutes probabilistic frequency before the exact DP runs. Together
//!    with the exact `Pr_F ≤ pfct` test it cuts whole subtrees, because
//!    the frequent probability is anti-monotone and dominates the FCP.
//! 2. **Superset pruning** (Lemma 4.2): if a *pre-item* (an item ordered
//!    before some item of `X`, hence outside `X`'s prefix subtree) occurs
//!    in every transaction of `T(X)`, then `X` and its entire prefix
//!    subtree are non-closed in every world — `Pr_FC ≡ 0`.
//! 3. **Subset pruning** (Lemma 4.3): if an extension `X∪e` has the same
//!    count as `X`, then `X` is never closed, and every sibling subtree
//!    after `e` (none of which can contain `e`) is non-closed too; only
//!    the `X∪e` branch continues.
//! 4. **Probability-bound pruning** (Lemma 4.4) and the final checking
//!    phase, shared with the BFS framework via the internal evaluator.

use std::time::Instant;

use pfim::FreqProbScratch;
use prob::hoeffding::hoeffding_infrequent;
use utdb::{Item, TidSet, UncertainDatabase};

use crate::config::{MinerConfig, SearchStrategy};
use crate::evaluator::Evaluator;
use crate::par;
use crate::result::{MiningOutcome, Pfci};
use crate::stats::{MinerStats, PhaseTimers};
use crate::trace::{timed, MinerSink, NullSink, Phase, PruneKind, ShardableSink, ShardedSink};

/// Mine all probabilistic frequent closed itemsets with the configured
/// search strategy.
pub fn mine(db: &UncertainDatabase, config: &MinerConfig) -> MiningOutcome {
    mine_with(db, config, &mut NullSink)
}

/// [`mine`], observed by `sink` (see [`crate::trace`]).
///
/// The DFS path can fan out over worker threads
/// ([`MinerConfig::threads`]), so the sink must be [`ShardableSink`];
/// every provided sink (and their `Tee`/`Option`/`&mut` compositions)
/// is.
pub fn mine_with<S: ShardableSink + ?Sized>(
    db: &UncertainDatabase,
    config: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    match config.search {
        SearchStrategy::Dfs => mine_dfs_with(db, config, sink),
        SearchStrategy::Bfs => crate::bfs::mine_bfs_with(db, config, sink),
    }
}

/// The depth-first `ProbFC` algorithm.
pub fn mine_dfs(db: &UncertainDatabase, config: &MinerConfig) -> MiningOutcome {
    mine_dfs_with(db, config, &mut NullSink)
}

/// [`mine_dfs`], observed by `sink` (see [`crate::trace`]).
///
/// With [`MinerConfig::effective_threads`] > 1, the first-level subtree
/// roots fan out over a work-stealing pool ([`crate::par`]); results,
/// stats, timers and sink shards are merged deterministically in
/// canonical item order at the join barrier. Exact-mode output is
/// bit-identical to the sequential run for every thread count;
/// sampled-mode output is a pure function of `(seed, threads)` (and in
/// fact of `seed` alone for any `threads ≥ 2`, since each root owns a
/// seed-derived RNG stream). `threads = 1` runs the legacy sequential
/// code byte-identically.
pub fn mine_dfs_with<S: ShardableSink + ?Sized>(
    db: &UncertainDatabase,
    config: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    config.validate();
    let threads = config.effective_threads();
    if threads <= 1 {
        return mine_dfs_sequential(db, config, sink);
    }
    mine_dfs_parallel(db, config, sink, threads)
}

/// The pre-parallelism single-threaded miner, byte-for-byte.
fn mine_dfs_sequential<S: MinerSink + ?Sized>(
    db: &UncertainDatabase,
    config: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    sink.run_started("dfs", config);
    let start = Instant::now();
    let deadline = config.time_budget.map(|b| start + b);
    let mut miner = DfsMiner {
        evaluator: Evaluator::new(db, config, sink),
        scratch: FreqProbScratch::new(),
        results: Vec::new(),
        deadline,
        timed_out: false,
    };

    // Phase 1 (Fig. 1): candidate set of probabilistic frequent single
    // items; each then roots a depth-first enumeration.
    for id in 0..db.num_items() as u32 {
        miner.mine_root(Item(id));
    }

    let DfsMiner {
        evaluator,
        mut results,
        timed_out,
        ..
    } = miner;
    let Evaluator {
        stats,
        timers,
        sink,
        ..
    } = evaluator;
    results.sort_by(|a, b| a.items.cmp(&b.items));
    let outcome = MiningOutcome {
        results,
        stats,
        timers,
        elapsed: start.elapsed(),
        timed_out,
    };
    sink.run_finished(&outcome);
    outcome
}

/// First-level fan-out: each root item's subtree is one task on the
/// work-stealing pool, observed through a private sink shard. The
/// barrier then reconciles shards/results/stats/timers in root-id order,
/// so aggregate sinks see exactly the sequential event stream (in exact
/// mode) and the result set is sorted identically to the sequential
/// path.
fn mine_dfs_parallel<S: ShardableSink + ?Sized>(
    db: &UncertainDatabase,
    config: &MinerConfig,
    sink: &mut S,
    threads: usize,
) -> MiningOutcome {
    sink.run_started("dfs", config);
    let start = Instant::now();
    let deadline = config.time_budget.map(|b| start + b);
    // Workers run the sequential evaluator (no nested fan-out); each
    // root derives its own RNG stream from the run seed, making sampled
    // estimates independent of scheduling and of the worker count.
    let worker_cfg = config.clone().with_threads(1);

    let mut sharded = ShardedSink::new(sink);
    let roots: Vec<(u32, S::Shard)> = (0..db.num_items() as u32)
        .map(|id| (id, sharded.shard()))
        .collect();

    let worker_cfg = &worker_cfg;
    let per_root = par::scatter(threads, roots, |_, (id, mut shard)| {
        let mut cfg = worker_cfg.clone();
        cfg.seed = par::mix_seed(worker_cfg.seed, u64::from(id));
        let mut miner = DfsMiner {
            evaluator: Evaluator::new(db, &cfg, &mut shard),
            scratch: FreqProbScratch::new(),
            results: Vec::new(),
            deadline,
            timed_out: false,
        };
        miner.mine_root(Item(id));
        let DfsMiner {
            evaluator,
            results,
            timed_out,
            ..
        } = miner;
        let Evaluator { stats, timers, .. } = evaluator;
        (shard, results, stats, timers, timed_out)
    });

    let mut stats = MinerStats::default();
    let mut timers = PhaseTimers::default();
    let mut results = Vec::new();
    let mut timed_out = false;
    for (shard, root_results, root_stats, root_timers, root_timed_out) in per_root {
        sharded.absorb(shard);
        stats.absorb(&root_stats);
        timers.absorb(&root_timers);
        results.extend(root_results);
        timed_out |= root_timed_out;
    }
    results.sort_by(|a, b| a.items.cmp(&b.items));
    let outcome = MiningOutcome {
        results,
        stats,
        timers,
        elapsed: start.elapsed(),
        timed_out,
    };
    sharded.parent().run_finished(&outcome);
    outcome
}

struct DfsMiner<'a, S: MinerSink + ?Sized> {
    evaluator: Evaluator<'a, S>,
    scratch: FreqProbScratch,
    results: Vec<Pfci>,
    deadline: Option<Instant>,
    timed_out: bool,
}

impl<S: MinerSink + ?Sized> DfsMiner<'_, S> {
    /// Qualify `item` as a subtree root and, when it survives, mine its
    /// whole depth-first subtree. One call per database item; both the
    /// sequential and the parallel driver funnel through here so the two
    /// paths perform identical per-root work.
    fn mine_root(&mut self, item: Item) {
        let tids = self.evaluator.db.tidset_of(item).clone();
        if let Some(pr_f) = self.qualify(&tids) {
            self.process_node(&mut vec![item], &tids, pr_f);
        }
    }

    /// Is the itemset with tid-set `tids` a probabilistic frequent
    /// itemset? Returns its exact frequent probability when it is.
    /// Applies the Chernoff–Hoeffding refutation first when enabled.
    fn qualify(&mut self, tids: &TidSet) -> Option<f64> {
        let db = self.evaluator.db;
        let cfg = self.evaluator.cfg;
        let count = tids.count();
        if count < cfg.min_sup {
            return None;
        }
        if cfg.pruning.chernoff_hoeffding {
            let refuted = timed(
                Phase::ChBound,
                &mut self.evaluator.timers,
                &mut *self.evaluator.sink,
                || {
                    let esup: f64 = tids.iter().map(|tid| db.probability(tid)).sum();
                    hoeffding_infrequent(esup, count, cfg.min_sup, cfg.pfct)
                },
            );
            if refuted {
                self.evaluator.stats.ch_pruned += 1;
                self.evaluator
                    .sink
                    .prune_fired(PruneKind::ChernoffHoeffding);
                return None;
            }
        }
        self.evaluator.stats.freq_prob_evals += 1;
        let scratch = &mut self.scratch;
        let pr_f = timed(
            Phase::FreqDp,
            &mut self.evaluator.timers,
            &mut *self.evaluator.sink,
            || scratch.tail(db, tids, cfg.min_sup),
        );
        self.evaluator.sink.freq_prob_evaluated(pr_f);
        if pr_f <= cfg.pfct {
            self.evaluator.stats.freq_pruned += 1;
            self.evaluator.sink.prune_fired(PruneKind::FreqProb);
            return None;
        }
        Some(pr_f)
    }

    /// Process the enumeration node for itemset `items` (which is known to
    /// be a probabilistic frequent itemset with frequent probability
    /// `pr_f`): apply superset pruning, grow extensions with subset
    /// pruning, then run the checking phase on `items` itself.
    fn process_node(&mut self, items: &mut Vec<Item>, tids: &TidSet, pr_f: f64) {
        if self.timed_out {
            return;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.timed_out = true;
                return;
            }
        }
        let db = self.evaluator.db;
        let cfg = self.evaluator.cfg;
        self.evaluator.stats.nodes_visited += 1;
        self.evaluator.sink.node_entered(items.len());

        // --- Superset pruning (Lemma 4.2) --------------------------------
        if cfg.pruning.superset {
            let last = items.last().expect("nodes carry non-empty itemsets").0;
            for pre_id in 0..last {
                let pre = Item(pre_id);
                if items.binary_search(&pre).is_ok() {
                    continue;
                }
                if tids.is_subset(db.tidset_of(pre)) {
                    // X and every superset with X as prefix appear only
                    // together with `pre`: the whole subtree is dead.
                    self.evaluator.stats.superset_pruned += 1;
                    self.evaluator.sink.prune_fired(PruneKind::Superset);
                    return;
                }
            }
        }

        // --- Extension loop with subset pruning (Lemma 4.3) ---------------
        let mut x_closed = true;
        let count = tids.count();
        let last = items.last().expect("non-empty").0;
        for ext_id in last + 1..db.num_items() as u32 {
            let ext = Item(ext_id);
            let child_tids = tids.intersection(db.tidset_of(ext));
            let child_count = child_tids.count();
            if child_count == 0 {
                continue;
            }
            if cfg.pruning.subset && child_count == count {
                // X∪ext always accompanies X: X is never closed, and the
                // remaining sibling subtrees (which cannot contain `ext`)
                // are never closed either — only this branch survives.
                self.evaluator.stats.subset_pruned += 1;
                self.evaluator.sink.prune_fired(PruneKind::Subset);
                x_closed = false;
                // T(X∪ext) = T(X), so the frequent probability carries over.
                items.push(ext);
                self.process_node(items, &child_tids, pr_f);
                items.pop();
                break;
            }
            if let Some(child_pr_f) = self.qualify(&child_tids) {
                items.push(ext);
                self.process_node(items, &child_tids, child_pr_f);
                items.pop();
            }
        }

        // --- Checking phase for X itself -----------------------------------
        if !x_closed {
            return;
        }
        if let Some(pfci) = self.evaluator.evaluate(items, tids, pr_f) {
            self.results.push(pfci);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;
    use crate::exact::exact_pfci_set;

    fn table2() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
        ])
    }

    fn table4() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
            ("a b", 0.4),
            ("a", 0.4),
        ])
    }

    #[test]
    fn running_example_result_set_and_values() {
        let db = table2();
        let out = mine_dfs(&db, &MinerConfig::new(2, 0.8));
        let rendered: Vec<String> = out.results.iter().map(|p| p.render(&db)).collect();
        assert_eq!(rendered.len(), 2, "{rendered:?}");
        assert!(rendered[0].starts_with("{a, b, c}:"));
        assert!(rendered[1].starts_with("{a, b, c, d}:"));
        assert!((out.fcp_of(&out.results[0].items).unwrap() - 0.8754).abs() < 0.01);
        assert!((out.fcp_of(&out.results[1].items).unwrap() - 0.81).abs() < 0.01);
    }

    #[test]
    fn matches_exact_oracle_on_small_databases() {
        for (db, min_sup, pfct) in [
            (table2(), 2, 0.8),
            (table2(), 2, 0.5),
            (table2(), 1, 0.8),
            (table2(), 3, 0.3),
            (table4(), 2, 0.8),
            (table4(), 2, 0.6),
            (table4(), 1, 0.9),
        ] {
            let oracle = exact_pfci_set(&db, min_sup, pfct);
            let cfg = MinerConfig::new(min_sup, pfct)
                .with_fcp_method(crate::config::FcpMethod::ExactOnly);
            let out = mine_dfs(&db, &cfg);
            assert_eq!(
                out.itemsets(),
                oracle.iter().map(|p| p.items.clone()).collect::<Vec<_>>(),
                "min_sup={min_sup} pfct={pfct}"
            );
            for (got, want) in out.results.iter().zip(&oracle) {
                assert!(
                    (got.fcp - want.fcp).abs() < 1e-6,
                    "{:?}: {} vs {}",
                    got.items,
                    got.fcp,
                    want.fcp
                );
            }
        }
    }

    #[test]
    fn all_variants_agree_on_the_result_set() {
        let db = table4();
        let base = MinerConfig::new(2, 0.8).with_fcp_method(crate::config::FcpMethod::ExactOnly);
        let reference = mine(&db, &base).itemsets();
        for variant in Variant::ALL {
            let cfg = base.clone().with_variant(variant);
            let out = mine(&db, &cfg);
            assert_eq!(out.itemsets(), reference, "{}", variant.name());
        }
    }

    #[test]
    fn pruning_counters_fire_on_the_running_example() {
        let db = table2();
        let out = mine_dfs(&db, &MinerConfig::new(2, 0.8));
        // Example 4.3: subset pruning stops {ab}'s siblings, superset
        // pruning stops {b}, {c}, {d} roots.
        assert!(out.stats.subset_pruned > 0);
        assert!(out.stats.superset_pruned > 0);
        assert!(out.stats.nodes_visited >= 4);
    }

    #[test]
    fn empty_database_and_high_thresholds() {
        let empty = UncertainDatabase::new(vec![], utdb::ItemDictionary::new());
        assert!(mine_dfs(&empty, &MinerConfig::new(1, 0.5))
            .results
            .is_empty());

        let db = table2();
        assert!(mine_dfs(&db, &MinerConfig::new(5, 0.5)).results.is_empty());
        assert!(mine_dfs(&db, &MinerConfig::new(2, 0.999))
            .results
            .is_empty());
    }

    #[test]
    fn adaptive_sampling_method_agrees_with_exact() {
        let db = table4();
        let exact = mine_dfs(
            &db,
            &MinerConfig::new(2, 0.8).with_fcp_method(crate::config::FcpMethod::ExactOnly),
        );
        let adaptive = mine_dfs(
            &db,
            &MinerConfig::new(2, 0.8)
                .with_fcp_method(crate::config::FcpMethod::ApproxAdaptive)
                .with_approximation(0.05, 0.05),
        );
        assert_eq!(adaptive.itemsets(), exact.itemsets());
    }

    #[test]
    fn deterministic_across_runs() {
        let db = table4();
        let cfg = MinerConfig::new(2, 0.8);
        let a = mine_dfs(&db, &cfg);
        let b = mine_dfs(&db, &cfg);
        assert_eq!(a.results, b.results);
        assert_eq!(a.stats, b.stats);
    }
}
