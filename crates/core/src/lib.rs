//! MPFCI — Mining Probabilistic Frequent Closed Itemsets.
//!
//! Implementation of *"Discovering Threshold-based Frequent Closed
//! Itemsets over Probabilistic Data"* (Tong, Chen & Ding, ICDE 2012).
//!
//! Given an uncertain transaction database (tuple-uncertainty model), a
//! minimum support `min_sup` and a probabilistic frequent closed threshold
//! `pfct`, the miner returns every itemset whose *frequent closed
//! probability* — the total probability of possible worlds in which the
//! itemset is a frequent closed itemset — exceeds `pfct`. Computing that
//! probability is #P-hard (the paper's Theorem 3.1, reproduced
//! constructively in [`hardness`]), so the miner combines:
//!
//! * a depth-first **Bounding–Pruning–Checking** search ([`mpfci`]),
//! * **Chernoff–Hoeffding** pruning of probabilistically infrequent
//!   candidates (Lemma 4.1),
//! * structural **superset/subset** prunings on tid-set containment
//!   (Lemmas 4.2/4.3),
//! * **frequent-closed-probability bounds** from de Caen / Kwerel union
//!   inequalities (Lemma 4.4) in [`events`],
//! * the **`ApproxFCP`** Karp–Luby FPRAS for the remaining itemsets
//!   (Fig. 2) in [`fcp`], alongside exact inclusion–exclusion and
//!   possible-world oracles.
//!
//! A breadth-first variant ([`bfs`]), the Naive baseline ([`naive`]) and
//! per-run instrumentation ([`stats`]) complete the experimental surface
//! of the paper's Section V. All of them front through the [`miner`]
//! builder — `Miner::new(&db).min_sup(2).pfct(0.8).run()` — with the
//! historical `mine*` free functions kept as deprecated wrappers. The
//! [`trace`] module adds pluggable observability: attach a [`MinerSink`]
//! via [`Miner::sink`] to receive node/pruning/evaluation events, JSONL
//! run traces and per-phase wall-clock timings. The [`metrics`] module turns
//! that event stream into quantitative distributions — log-bucketed
//! latency/size [`Histogram`]s in a mergeable, JSON-exportable
//! [`MetricsRegistry`] — and (behind the `track-alloc` feature)
//! `memtrack` adds global allocation accounting for peak-memory
//! reporting.
//!
//! # Quick start
//!
//! ```
//! use pfcim_core::prelude::*;
//!
//! // The paper's running example (Table II).
//! let db = UncertainDatabase::parse_symbolic(&[
//!     ("a b c d", 0.9),
//!     ("a b c", 0.6),
//!     ("a b c", 0.7),
//!     ("a b c d", 0.9),
//! ]);
//! let outcome = Miner::new(&db).min_sup(2).pfct(0.8).run();
//! // Exactly {a,b,c} (fcp 0.8754) and {a,b,c,d} (fcp 0.81) qualify.
//! assert_eq!(outcome.results.len(), 2);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bfs;
pub mod config;
pub(crate) mod evaluator;
pub mod events;
pub mod exact;
pub mod fcp;
pub mod hardness;
#[cfg(feature = "track-alloc")]
pub mod memtrack;
pub mod metrics;
pub mod miner;
pub mod mpfci;
pub mod naive;
pub mod par;
pub mod prelude;
pub mod profile;
pub mod result;
pub mod stats;
pub mod telemetry;
pub mod trace;

#[allow(deprecated)]
pub use bfs::{mine_bfs, mine_bfs_with};
pub use config::{
    default_event_cache_capacity, FcpMethod, MinerConfig, PruningConfig, SearchStrategy, Variant,
    DEFAULT_EVENT_CACHE_CAPACITY,
};
pub use events::{EventTable, NonClosureEvents, SampleView};
pub use exact::{exact_fcp_by_worlds, exact_fcp_inclusion_exclusion, exact_pfci_set};
pub use fcp::{
    approx_fcp, approx_fcp_adaptive, approx_fcp_adaptive_traced, approx_fcp_chunked,
    approx_fcp_chunked_traced, approx_fcp_traced,
};
pub use metrics::{lint_prometheus, Histogram, HistogramSink, HistogramSummary, MetricsRegistry};
pub use miner::{Algorithm, Miner, SinkedMiner};
#[allow(deprecated)]
pub use mpfci::{mine, mine_dfs, mine_dfs_with, mine_with};
#[allow(deprecated)]
pub use naive::{mine_naive, mine_naive_with};
pub use par::{
    scatter_instrumented, PoolGauges, PoolGaugesSnapshot, PoolSpan, PoolSpanKind, PoolTrace,
    WorkerGauges, MAX_TRACKED_WORKERS,
};
pub use profile::{Span, SpanId, SpanKind, SpanProfiler};
pub use result::{MiningOutcome, Pfci};
pub use stats::{DpAudit, KernelStats, MinerStats, PhaseTimers, TimedStats};
pub use telemetry::{
    http_get, FlightRecorder, Telemetry, TelemetryConfig, TelemetryEvent, TelemetryEventKind,
    TelemetrySample, TelemetrySink, TelemetryState, WordRing,
};
pub use trace::{
    parse_jsonl, CountingSink, DpDecision, FcpEvalKind, JsonlSink, MinerSink, NullSink, Phase,
    ProgressSink, PruneKind, RecordingSink, ShardableSink, ShardedSink, Tee, TraceEvent,
};
