//! The unified entry point: a fluent [`Miner`] builder over every mining
//! algorithm and option.
//!
//! Historically each algorithm exposed a `mine*`/`mine*_with` free
//! function pair, and configuration went through [`MinerConfig`]'s
//! `with_*` methods — a call-site matrix that grew with every axis. The
//! builder collapses it:
//!
//! ```
//! use pfcim_core::prelude::*;
//! use utdb::UncertainDatabase;
//!
//! let db = UncertainDatabase::parse_symbolic(&[
//!     ("a b c d", 0.9),
//!     ("a b c", 0.6),
//!     ("a b c", 0.7),
//!     ("a b c d", 0.9),
//! ]);
//! let outcome = Miner::new(&db)
//!     .min_sup(2)
//!     .pfct(0.8)
//!     .algorithm(Algorithm::Dfs)
//!     .threads(1)
//!     .run();
//! assert_eq!(outcome.results.len(), 2);
//! ```
//!
//! Attach any [`crate::trace::MinerSink`] with [`Miner::sink`]:
//!
//! ```
//! # use pfcim_core::prelude::*;
//! # use pfcim_core::CountingSink;
//! # use utdb::UncertainDatabase;
//! # let db = UncertainDatabase::parse_symbolic(&[("a b", 0.9), ("a b", 0.8)]);
//! let mut counting = CountingSink::default();
//! let outcome = Miner::new(&db).min_sup(1).pfct(0.5).sink(&mut counting).run();
//! assert_eq!(counting.stats, outcome.stats);
//! ```
//!
//! The old free functions remain as deprecated wrappers, so existing
//! code keeps compiling while migrating.

use std::time::Duration;

use utdb::UncertainDatabase;

use crate::config::{FcpMethod, MinerConfig, PruningConfig, SearchStrategy, Variant};
use crate::result::MiningOutcome;
use crate::trace::{NullSink, ShardableSink};

/// Which mining algorithm a [`Miner`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Depth-first `ProbFC` (the paper's Fig. 3) — the default.
    #[default]
    Dfs,
    /// Breadth-first level-wise search (`MPFCI-BFS`, Section V.D).
    Bfs,
    /// The exhaustive PFI-checking baseline (the paper's "Naive").
    Naive,
}

/// Fluent builder over database, configuration, algorithm and sink — the
/// single public entry point for mining (see the [module docs](self)).
///
/// Construction is infallible; threshold validation happens at
/// [`Miner::run`], exactly as the free functions validated at entry.
#[derive(Debug, Clone)]
pub struct Miner<'a> {
    db: &'a UncertainDatabase,
    config: MinerConfig,
    algorithm: Option<Algorithm>,
}

impl<'a> Miner<'a> {
    /// Start building a run over `db` with the paper's default
    /// configuration (`min_sup = 1`, `pfct = 0.5`, `ε = δ = 0.1`, all
    /// prunings, depth-first search).
    pub fn new(db: &'a UncertainDatabase) -> Self {
        Self {
            db,
            config: MinerConfig::new(1, 0.5),
            algorithm: None,
        }
    }

    /// Replace the whole configuration (escape hatch for presets and
    /// sweeps that already carry a [`MinerConfig`]).
    pub fn config(mut self, config: MinerConfig) -> Self {
        self.config = config;
        self
    }

    /// A copy of the configuration the run would use.
    pub fn to_config(&self) -> MinerConfig {
        self.config.clone()
    }

    /// Minimum support threshold (absolute count, ≥ 1).
    pub fn min_sup(mut self, min_sup: usize) -> Self {
        self.config.min_sup = min_sup.max(1);
        self
    }

    /// Probabilistic frequent closed threshold in `[0, 1)`.
    pub fn pfct(mut self, pfct: f64) -> Self {
        self.config.pfct = pfct;
        self
    }

    /// `ApproxFCP` relative tolerance `ε` and confidence parameter `δ`.
    pub fn approximation(mut self, epsilon: f64, delta: f64) -> Self {
        self.config.epsilon = epsilon;
        self.config.delta = delta;
        self
    }

    /// Seed of the deterministic RNG driving `ApproxFCP`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Worker threads (`0` = auto; see [`MinerConfig::threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Wall-clock budget after which the run aborts with
    /// [`MiningOutcome::timed_out`] set.
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.config.time_budget = Some(budget);
        self
    }

    /// Probability-computation policy for surviving itemsets.
    pub fn fcp_method(mut self, method: FcpMethod) -> Self {
        self.config.fcp_method = method;
        self
    }

    /// Replace the pruning toggles wholesale.
    pub fn pruning(mut self, pruning: PruningConfig) -> Self {
        self.config.pruning = pruning;
        self
    }

    /// Apply one of the paper's Table VII variants (may flip the search
    /// strategy; an explicit [`Miner::algorithm`] still wins).
    pub fn variant(mut self, variant: Variant) -> Self {
        self.config = self.config.with_variant(variant);
        self
    }

    /// Legacy numerical-stability floor of the incremental frequentness DP
    /// (see [`MinerConfig::dp_stability`]). Prefer
    /// [`Miner::dp_error_tol`], which gates on a measured error bound.
    pub fn dp_stability(mut self, dp_stability: f64) -> Self {
        self.config.dp_stability = dp_stability;
        self
    }

    /// Measured-error tolerance for incremental DP downdates (see
    /// [`MinerConfig::dp_error_tol`]). `0.0` accepts only exact downdates.
    pub fn dp_error_tol(mut self, dp_error_tol: f64) -> Self {
        self.config.dp_error_tol = dp_error_tol;
        self
    }

    /// Capacity of the evaluator's bound-input cache (`0` disables; see
    /// [`MinerConfig::event_cache_capacity`]).
    pub fn event_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.event_cache_capacity = capacity;
        self
    }

    /// Select the algorithm explicitly. Without this, the configured
    /// [`MinerConfig::search`] strategy decides (DFS by default).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Attach an observing sink; finish with [`SinkedMiner::run`].
    pub fn sink<'s, S: ShardableSink + ?Sized>(self, sink: &'s mut S) -> SinkedMiner<'a, 's, S> {
        SinkedMiner { miner: self, sink }
    }

    /// Run unobserved.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range thresholds ([`MinerConfig::validate`]).
    pub fn run(self) -> MiningOutcome {
        self.run_on(&mut NullSink)
    }

    fn run_on<S: ShardableSink + ?Sized>(mut self, sink: &mut S) -> MiningOutcome {
        let algorithm = self.algorithm.unwrap_or(match self.config.search {
            SearchStrategy::Dfs => Algorithm::Dfs,
            SearchStrategy::Bfs => Algorithm::Bfs,
        });
        match algorithm {
            Algorithm::Dfs => {
                self.config.search = SearchStrategy::Dfs;
                crate::mpfci::run_dfs(self.db, &self.config, sink)
            }
            Algorithm::Bfs => {
                self.config.search = SearchStrategy::Bfs;
                crate::bfs::run_bfs(self.db, &self.config, sink)
            }
            Algorithm::Naive => crate::naive::run_naive(self.db, &self.config, sink),
        }
    }
}

/// A [`Miner`] with a sink attached — call [`SinkedMiner::run`].
#[derive(Debug)]
pub struct SinkedMiner<'a, 's, S: ShardableSink + ?Sized> {
    miner: Miner<'a>,
    sink: &'s mut S,
}

impl<S: ShardableSink + ?Sized> SinkedMiner<'_, '_, S> {
    /// Run the configured algorithm, reporting every trace event to the
    /// attached sink.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range thresholds ([`MinerConfig::validate`]).
    pub fn run(self) -> MiningOutcome {
        self.miner.run_on(self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, NullSink};

    fn table2() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
        ])
    }

    #[test]
    fn builder_matches_free_function_defaults() {
        let db = table2();
        let built = Miner::new(&db).min_sup(2).pfct(0.8).run();
        let direct = crate::mpfci::run_dfs(&db, &MinerConfig::new(2, 0.8), &mut NullSink);
        assert_eq!(built.results, direct.results);
        assert_eq!(built.stats, direct.stats);
        assert_eq!(built.kernel, direct.kernel);
    }

    #[test]
    fn builder_selects_every_algorithm() {
        let db = table2();
        let cfg = MinerConfig::new(2, 0.8);
        let dfs = Miner::new(&db)
            .config(cfg.clone())
            .algorithm(Algorithm::Dfs)
            .run();
        let bfs = Miner::new(&db)
            .config(cfg.clone())
            .algorithm(Algorithm::Bfs)
            .run();
        let naive = Miner::new(&db)
            .config(cfg)
            .algorithm(Algorithm::Naive)
            .run();
        assert_eq!(dfs.itemsets(), bfs.itemsets());
        assert_eq!(dfs.itemsets(), naive.itemsets());
    }

    #[test]
    fn variant_sets_search_strategy_unless_overridden() {
        let db = table2();
        let via_variant = Miner::new(&db)
            .min_sup(2)
            .pfct(0.8)
            .variant(Variant::Bfs)
            .run();
        let explicit_bfs = Miner::new(&db)
            .min_sup(2)
            .pfct(0.8)
            .variant(Variant::Bfs)
            .algorithm(Algorithm::Bfs)
            .run();
        assert_eq!(via_variant.results, explicit_bfs.results);
        // An explicit algorithm choice beats the variant's strategy.
        let overridden = Miner::new(&db)
            .min_sup(2)
            .pfct(0.8)
            .variant(Variant::Bfs)
            .algorithm(Algorithm::Dfs)
            .run();
        assert_eq!(overridden.itemsets(), via_variant.itemsets());
    }

    #[test]
    fn sink_observes_the_run() {
        let db = table2();
        let mut counting = CountingSink::default();
        let outcome = Miner::new(&db)
            .min_sup(2)
            .pfct(0.8)
            .threads(1)
            .sink(&mut counting)
            .run();
        assert_eq!(counting.stats, outcome.stats);
        assert_eq!(counting.results_emitted, outcome.results.len() as u64);
    }

    #[test]
    fn builder_knobs_land_in_the_config() {
        let db = table2();
        let cfg = Miner::new(&db)
            .min_sup(3)
            .pfct(0.7)
            .approximation(0.05, 0.02)
            .seed(42)
            .threads(2)
            .time_budget(Duration::from_secs(9))
            .fcp_method(FcpMethod::ExactOnly)
            .dp_stability(0.5)
            .dp_error_tol(1e-7)
            .event_cache_capacity(7)
            .to_config();
        assert_eq!(cfg.min_sup, 3);
        assert_eq!(cfg.pfct, 0.7);
        assert_eq!((cfg.epsilon, cfg.delta), (0.05, 0.02));
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.time_budget, Some(Duration::from_secs(9)));
        assert_eq!(cfg.fcp_method, FcpMethod::ExactOnly);
        assert_eq!(cfg.dp_stability, 0.5);
        assert_eq!(cfg.dp_error_tol, 1e-7);
        assert_eq!(cfg.event_cache_capacity, 7);
    }

    #[test]
    #[should_panic(expected = "pfct")]
    fn run_validates_thresholds() {
        let db = table2();
        let _ = Miner::new(&db).min_sup(2).pfct(1.5).run();
    }
}
