//! `ApproxFCP` (Fig. 2 of the paper): the Monte-Carlo FPRAS for the
//! frequent closed probability.
//!
//! The frequent non-closed probability is the probability of a union of
//! non-closure events — a DNF probability — estimated by the Karp–Luby
//! coverage algorithm with `N = ⌈4m · ln(2/δ) / ε²⌉` samples; subtracting
//! it from the exact frequent probability gives the FCP estimate
//! `P̂r_FC(X)` with `Pr(|P̂r_FC − Pr_FC| ≤ ε·err) ≥ 1 − δ` in the sense of
//! the underlying FPRAS guarantee on the union term.

use prob::dnf::{
    karp_luby_union_adaptive, karp_luby_union_with_samples, required_samples, KarpLubyEstimate,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::events::NonClosureEvents;
use crate::par;
use crate::stats::PhaseTimers;
use crate::trace::{timed, FcpEvalKind, MinerSink, Phase};

/// Result of one `ApproxFCP` run.
#[derive(Debug, Clone, Copy)]
pub struct ApproxFcpResult {
    /// Estimated frequent closed probability.
    pub fcp: f64,
    /// Estimated frequent non-closed probability (the union term).
    pub fnc: f64,
    /// Monte-Carlo samples drawn.
    pub samples: usize,
}

/// Estimate `Pr_FC(X)` given the itemset's exact frequent probability and
/// its non-closure event family.
///
/// `epsilon`/`delta` follow the paper's parameterization (defaults 0.1);
/// the estimate is clamped into `[0, pr_f]` — the FCP can never exceed the
/// frequent probability.
pub fn approx_fcp<R: Rng>(
    events: &NonClosureEvents,
    pr_f: f64,
    epsilon: f64,
    delta: f64,
    rng: &mut R,
) -> ApproxFcpResult {
    if events.is_empty() {
        // No superset can ever tie the support: frequent ⇒ closed.
        return ApproxFcpResult {
            fcp: pr_f,
            fnc: 0.0,
            samples: 0,
        };
    }
    // The paper sizes the sample budget by k = m − |X|, the number of
    // extension items — not by the (often far smaller) number of events
    // that survive the exact-zero filter.
    let n = required_samples(events.considered_items(), epsilon, delta);
    let KarpLubyEstimate {
        estimate, samples, ..
    } = karp_luby_union_with_samples(events, n, rng);
    ApproxFcpResult {
        fcp: (pr_f - estimate).clamp(0.0, pr_f),
        fnc: estimate,
        samples,
    }
}

/// `ApproxFCP` with the adaptive stopping rule (see
/// [`crate::config::FcpMethod::ApproxAdaptive`]): identical estimand and
/// guarantee, but the sample count adapts to the union probability. The
/// fixed-`N` budget of [`approx_fcp`] doubles as the cap.
pub fn approx_fcp_adaptive<R: Rng>(
    events: &NonClosureEvents,
    pr_f: f64,
    epsilon: f64,
    delta: f64,
    rng: &mut R,
) -> ApproxFcpResult {
    if events.is_empty() {
        return ApproxFcpResult {
            fcp: pr_f,
            fnc: 0.0,
            samples: 0,
        };
    }
    let cap = required_samples(events.considered_items(), epsilon, delta);
    let est = karp_luby_union_adaptive(events, epsilon, delta, cap, rng);
    ApproxFcpResult {
        fcp: (pr_f - est.estimate).clamp(0.0, pr_f),
        fnc: est.estimate,
        samples: est.samples,
    }
}

/// [`approx_fcp`] with its `N` samples split across up to `threads`
/// workers (chunked Karp–Luby).
///
/// Each chunk gets its own `SmallRng` whose seed is drawn sequentially
/// from a stream seeded with `call_seed`, so the estimate depends only on
/// `(call_seed, threads)` — never on scheduling — and is reproducible.
/// Every chunk shares the total event mass `Z`, so the chunk estimates
/// `Z·hits_i/n_i` combine exactly via their sample-weighted mean: the
/// FPRAS guarantee of the single-pass estimator carries over unchanged.
/// With `threads ≤ 1` this is the same estimator as [`approx_fcp`]
/// modulo the RNG stream (the sequential miner keeps its legacy shared
/// RNG and never calls this).
pub fn approx_fcp_chunked(
    events: &NonClosureEvents,
    pr_f: f64,
    epsilon: f64,
    delta: f64,
    threads: usize,
    call_seed: u64,
) -> ApproxFcpResult {
    if events.is_empty() {
        return ApproxFcpResult {
            fcp: pr_f,
            fnc: 0.0,
            samples: 0,
        };
    }
    let n = required_samples(events.considered_items(), epsilon, delta);
    let chunks = par::chunk_sizes(n, threads.max(1));
    let mut seed_rng = SmallRng::seed_from_u64(call_seed);
    let tasks: Vec<(usize, u64)> = chunks
        .into_iter()
        .map(|c| (c, seed_rng.next_u64()))
        .collect();
    let view = events.sample_view();
    let estimates = par::scatter(threads, tasks, |_, (chunk, seed)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        karp_luby_union_with_samples(&view, chunk, &mut rng)
    });
    let total: usize = estimates.iter().map(|e| e.samples).sum();
    let weighted: f64 = estimates
        .iter()
        .map(|e| e.estimate * e.samples as f64)
        .sum();
    let estimate = if total > 0 {
        weighted / total as f64
    } else {
        0.0
    };
    ApproxFcpResult {
        fcp: (pr_f - estimate).clamp(0.0, pr_f),
        fnc: estimate,
        samples: total,
    }
}

/// [`approx_fcp_chunked`] as an instrumented phase; see
/// [`approx_fcp_traced`].
#[allow(clippy::too_many_arguments)] // mirrors approx_fcp_traced + (threads, call_seed)
pub fn approx_fcp_chunked_traced<S: MinerSink + ?Sized>(
    events: &NonClosureEvents,
    pr_f: f64,
    epsilon: f64,
    delta: f64,
    threads: usize,
    call_seed: u64,
    timers: &mut PhaseTimers,
    sink: &mut S,
) -> ApproxFcpResult {
    let r = timed(Phase::FcpSample, timers, &mut *sink, || {
        approx_fcp_chunked(events, pr_f, epsilon, delta, threads, call_seed)
    });
    sink.fcp_evaluated(FcpEvalKind::Sampled, r.samples as u64);
    r
}

/// [`approx_fcp`] as an instrumented phase: the sampling pass is timed
/// into `timers` under [`Phase::FcpSample`] and the sink receives the
/// phase bracket plus one [`FcpEvalKind::Sampled`] event carrying the
/// samples drawn.
pub fn approx_fcp_traced<R: Rng, S: MinerSink + ?Sized>(
    events: &NonClosureEvents,
    pr_f: f64,
    epsilon: f64,
    delta: f64,
    rng: &mut R,
    timers: &mut PhaseTimers,
    sink: &mut S,
) -> ApproxFcpResult {
    let r = timed(Phase::FcpSample, timers, &mut *sink, || {
        approx_fcp(events, pr_f, epsilon, delta, rng)
    });
    sink.fcp_evaluated(FcpEvalKind::Sampled, r.samples as u64);
    r
}

/// [`approx_fcp_adaptive`] as an instrumented phase; see
/// [`approx_fcp_traced`].
pub fn approx_fcp_adaptive_traced<R: Rng, S: MinerSink + ?Sized>(
    events: &NonClosureEvents,
    pr_f: f64,
    epsilon: f64,
    delta: f64,
    rng: &mut R,
    timers: &mut PhaseTimers,
    sink: &mut S,
) -> ApproxFcpResult {
    let r = timed(Phase::FcpSample, timers, &mut *sink, || {
        approx_fcp_adaptive(events, pr_f, epsilon, delta, rng)
    });
    sink.fcp_evaluated(FcpEvalKind::Sampled, r.samples as u64);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use utdb::{Item, UncertainDatabase};

    fn table2() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
        ])
    }

    fn family(db: &UncertainDatabase, symbols: &str, min_sup: usize) -> (NonClosureEvents, f64) {
        let x: Vec<Item> = symbols
            .split_whitespace()
            .map(|s| db.dictionary().get(s).unwrap())
            .collect();
        let tids = db.tidset_of_itemset(&x).into_bitmap();
        let ext = (0..db.num_items() as u32)
            .map(Item)
            .filter(|i| !x.contains(i));
        let events = NonClosureEvents::build(db, &tids, ext, min_sup);
        let pr_f = pfim::frequent_probability(db, &x, min_sup);
        (events, pr_f)
    }

    #[test]
    fn paper_value_for_abc() {
        // Pr_FC({a,b,c}) = 0.8754 at min_sup 2 (Example 1.2 / 4.3).
        let db = table2();
        let (events, pr_f) = family(&db, "a b c", 2);
        let mut rng = SmallRng::seed_from_u64(99);
        let r = approx_fcp(&events, pr_f, 0.05, 0.05, &mut rng);
        assert!((r.fcp - 0.8754).abs() < 0.01, "{}", r.fcp);
        assert!(r.samples > 0);
    }

    #[test]
    fn paper_value_for_abcd() {
        // {a,b,c,d} is maximal: FCP = Pr_F = 0.81, no sampling needed.
        let db = table2();
        let (events, pr_f) = family(&db, "a b c d", 2);
        let r = approx_fcp(&events, pr_f, 0.1, 0.1, &mut SmallRng::seed_from_u64(1));
        assert_eq!(r.fcp, 0.81);
        assert_eq!(r.samples, 0);
    }

    #[test]
    fn never_closed_itemsets_estimate_near_zero() {
        // {a,b} is covered by c in every world: Pr_FC = 0.
        let db = table2();
        let (events, pr_f) = family(&db, "a b", 2);
        let r = approx_fcp(&events, pr_f, 0.05, 0.05, &mut SmallRng::seed_from_u64(2));
        assert!(r.fcp < 0.02, "{}", r.fcp);
    }

    #[test]
    fn estimate_is_clamped_to_frequent_probability() {
        let db = table2();
        let (events, pr_f) = family(&db, "d", 1);
        let r = approx_fcp(&events, pr_f, 0.2, 0.2, &mut SmallRng::seed_from_u64(3));
        assert!(r.fcp >= 0.0 && r.fcp <= pr_f);
    }

    #[test]
    fn adaptive_variant_matches_fixed_budget_variant() {
        let db = table2();
        let (events, pr_f) = family(&db, "a b c", 2);
        let fixed = approx_fcp(&events, pr_f, 0.05, 0.05, &mut SmallRng::seed_from_u64(8));
        let adaptive =
            approx_fcp_adaptive(&events, pr_f, 0.05, 0.05, &mut SmallRng::seed_from_u64(9));
        assert!((fixed.fcp - adaptive.fcp).abs() < 0.02);
        // The union here is sizeable relative to Z, so adaptivity saves
        // samples.
        assert!(adaptive.samples <= fixed.samples);
    }

    #[test]
    fn traced_wrapper_matches_untraced_and_reports() {
        let db = table2();
        let (events, pr_f) = family(&db, "a b c", 2);
        let plain = approx_fcp(&events, pr_f, 0.05, 0.05, &mut SmallRng::seed_from_u64(7));
        let mut timers = PhaseTimers::default();
        let mut rec = crate::trace::RecordingSink::default();
        let traced = approx_fcp_traced(
            &events,
            pr_f,
            0.05,
            0.05,
            &mut SmallRng::seed_from_u64(7),
            &mut timers,
            &mut rec,
        );
        assert_eq!(plain.fcp, traced.fcp);
        assert_eq!(plain.samples, traced.samples);
        assert_eq!(timers.count(Phase::FcpSample), 1);
        assert!(rec.events.iter().any(|e| matches!(
            e,
            crate::trace::TraceEvent::FcpEval {
                method: FcpEvalKind::Sampled,
                ..
            }
        )));
    }

    #[test]
    fn chunked_estimate_is_reproducible_per_seed_and_thread_count() {
        let db = table2();
        let (events, pr_f) = family(&db, "a b c", 2);
        for threads in [1, 2, 4, 7] {
            let a = approx_fcp_chunked(&events, pr_f, 0.1, 0.1, threads, 0xfeed);
            let b = approx_fcp_chunked(&events, pr_f, 0.1, 0.1, threads, 0xfeed);
            assert_eq!(a.fcp.to_bits(), b.fcp.to_bits(), "threads={threads}");
            assert_eq!(a.samples, b.samples);
        }
        // Different seeds diverge (the estimator really is sampling).
        // The {a} family has three non-closure events, so the hit rate is
        // genuinely stochastic ({a,b,c}'s single-event family is not: its
        // estimate is exactly `z` for every seed).
        let (events, pr_f) = family(&db, "a", 2);
        let base = approx_fcp_chunked(&events, pr_f, 0.1, 0.1, 4, 0xfeed)
            .fcp
            .to_bits();
        let diverged = (0..4u64).any(|k| {
            approx_fcp_chunked(&events, pr_f, 0.1, 0.1, 4, 0xbeef + k)
                .fcp
                .to_bits()
                != base
        });
        assert!(diverged, "sampling estimator never diverged across seeds");
    }

    #[test]
    fn chunked_estimate_tracks_exact_value() {
        // Pr_FC({a,b,c}) = 0.8754 (Example 1.2 / 4.3), for every chunking.
        let db = table2();
        let (events, pr_f) = family(&db, "a b c", 2);
        for threads in [1, 2, 4, 7] {
            let r = approx_fcp_chunked(&events, pr_f, 0.05, 0.05, threads, 42);
            assert!(
                (r.fcp - 0.8754).abs() < 0.01,
                "threads={threads}: {}",
                r.fcp
            );
            // All chunks together still draw the full fixed-N budget.
            let n = approx_fcp(&events, pr_f, 0.05, 0.05, &mut SmallRng::seed_from_u64(5)).samples;
            assert_eq!(r.samples, n);
        }
    }

    #[test]
    fn chunked_empty_family_short_circuits() {
        let db = table2();
        let (events, pr_f) = family(&db, "a b c d", 2);
        let r = approx_fcp_chunked(&events, pr_f, 0.1, 0.1, 4, 7);
        assert_eq!(r.fcp, 0.81);
        assert_eq!(r.samples, 0);
    }

    #[test]
    fn chunked_traced_matches_untraced_and_reports() {
        let db = table2();
        let (events, pr_f) = family(&db, "a b c", 2);
        let plain = approx_fcp_chunked(&events, pr_f, 0.1, 0.1, 3, 77);
        let mut timers = PhaseTimers::default();
        let mut rec = crate::trace::RecordingSink::default();
        let traced =
            approx_fcp_chunked_traced(&events, pr_f, 0.1, 0.1, 3, 77, &mut timers, &mut rec);
        assert_eq!(plain.fcp.to_bits(), traced.fcp.to_bits());
        assert_eq!(plain.samples, traced.samples);
        assert_eq!(timers.count(Phase::FcpSample), 1);
        assert!(rec.events.iter().any(|e| matches!(
            e,
            crate::trace::TraceEvent::FcpEval {
                method: FcpEvalKind::Sampled,
                ..
            }
        )));
    }

    #[test]
    fn tighter_epsilon_draws_more_samples() {
        let db = table2();
        let (events, pr_f) = family(&db, "a", 2);
        let loose = approx_fcp(&events, pr_f, 0.2, 0.1, &mut SmallRng::seed_from_u64(4));
        let tight = approx_fcp(&events, pr_f, 0.05, 0.1, &mut SmallRng::seed_from_u64(4));
        assert!(tight.samples > loose.samples * 10);
    }
}
