#!/usr/bin/env bash
# Benchmark pipeline: run the dataset×algorithm matrix via the
# bench-report binary, emit a versioned BENCH_<label>.json, and
# schema-validate it with the same binary (in-tree parser, no external
# tooling).
#
#   scripts/bench.sh                full matrix (laptop scale) -> BENCH_<label>.json
#   scripts/bench.sh --smoke        tiny-scale matrix with a tight per-cell
#                                   budget -> target/bench/BENCH_smoke.json
#                                   (the scripts/ci.sh gate)
#
# Environment:
#   LABEL=name       report label for full runs   (default: local)
#   BASELINE=file    gate the fresh report against an archived one
#                    (e.g. BASELINE=BENCH_seed.json), failing the run on
#                    any cell slower by more than FAIL_PCT percent
#   FAIL_PCT=pct     regression threshold          (default: 20)
#   TRACK_ALLOC=0    skip the tracking allocator (peak_alloc_bytes = 0)
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
for arg in "$@"; do
    case "$arg" in
        --smoke) SMOKE=1 ;;
        *)
            echo "usage: scripts/bench.sh [--smoke]" >&2
            exit 2
            ;;
    esac
done

FEATURES=()
if [[ "${TRACK_ALLOC:-1}" == 1 ]]; then
    FEATURES+=(--features track-alloc)
fi
BENCH=(cargo run --release -q -p pfcim-bench "${FEATURES[@]}" --bin bench-report --)

if [[ $SMOKE == 1 ]]; then
    out=target/bench
    # Slow cells (Naive at low support) are cut at the budget and land
    # in the report as timed_out — the smoke gate checks the pipeline
    # and the schema, not absolute timings.
    # --threads 2 exercises the work-stealing pool (sharded sinks,
    # chunked sampling) end-to-end through the report pipeline.
    # The smoke matrix includes the high-probability dataset; the
    # binary itself asserts its MPFCI cell recorded incremental DP
    # downdates and that every cell's decision audit reconciles with
    # the kernel counters.
    "${BENCH[@]}" --smoke --label smoke --budget 5 --threads 2 --out-dir "$out"
    "${BENCH[@]}" --validate "$out/BENCH_smoke.json"
    # Cross-version gate: the fresh schema-v4 report must still load
    # and compare against the committed v3 kernel baseline. The huge
    # threshold makes this a schema/pipeline check, not a machine-speed
    # check (sub-noise-floor and budget-cut cells are skipped anyway).
    "${BENCH[@]}" --compare BENCH_kernel.json "$out/BENCH_smoke.json" \
        --fail-on-regress 100000
    # Kernel micro-benches (bitmap intersection, incremental-vs-full DP):
    # run once to prove they execute; timings are informational here.
    cargo bench -q -p pfcim-bench --bench micro_kernels
else
    label="${LABEL:-local}"
    "${BENCH[@]}" --label "$label" --out-dir .
    "${BENCH[@]}" --validate "BENCH_${label}.json"
    if [[ -n "${BASELINE:-}" ]]; then
        "${BENCH[@]}" --compare "$BASELINE" "BENCH_${label}.json" \
            --fail-on-regress "${FAIL_PCT:-20}"
    fi
fi

echo "bench: done"
