#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), the full test
# suite, and a compile check of every bench target. Run from anywhere;
# everything executes at the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo test --workspace -q
run cargo test -p pfcim-core --features track-alloc -q
run cargo check --benches --workspace
# Benchmark pipeline smoke: run the tiny matrix end-to-end and
# schema-validate the emitted BENCH_smoke.json.
run scripts/bench.sh --smoke

echo "ci: all checks passed"
