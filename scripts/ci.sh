#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), the full test
# suite, and a compile check of every bench target. Run from anywhere;
# everything executes at the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo test --workspace -q
# Threads matrix: re-run the workspace suite with the differential
# tests pinned to an explicit sequential + parallel worker pair.
run env PFCIM_TEST_THREADS=1,4 cargo test --workspace -q
# Tolerance sweep: strict/default/loose dp_error_tol plus the legacy
# dp_stability spellings must mine identical result sets on a larger
# Gaussian database than the default in-test size exercises.
run env PFCIM_SWEEP_ROWS=200 cargo test --release -q -p pfcim --test dp_tol_sweep
run cargo test -p pfcim-core --features track-alloc -q
run cargo check --benches --workspace
# Rustdoc must build clean: broken intra-doc links and malformed
# examples are errors, not warnings.
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
# Benchmark pipeline smoke: run the tiny matrix end-to-end and
# schema-validate the emitted BENCH_smoke.json.
run scripts/bench.sh --smoke
# Profiler/exporter smoke: mine the high-probability dataset under the
# span profiler and check both artifacts exist and carry the expected
# markers. Deep validation (JSON round-trip, span nesting, Prometheus
# linting) lives in crates/bench/tests/profile_exporters.rs; the pfcim
# binary additionally lints its own --prom output before writing it.
profdir=target/profile-smoke
mkdir -p "$profdir"
run cargo run --release -q -p pfcim-bench --example gen_smoke_dat -- "$profdir/smoke.dat"
run cargo run --release -q -p pfcim --bin pfcim -- profile "$profdir/smoke.dat" \
    --min-sup 1% --out "$profdir/trace.json" --sample 4 \
    --prom "$profdir/metrics.prom" --stats
run grep -q '"traceEvents"' "$profdir/trace.json"
run grep -q '^pfcim_nodes_visited ' "$profdir/metrics.prom"
run grep -q '^# TYPE pfcim_audit_incremental counter' "$profdir/metrics.prom"

# Live-telemetry smoke: launch a deliberately slowed mine with the
# scrape endpoint on an ephemeral port, curl /metrics, /healthz and
# /flight while the run is still alive, render one frame of the
# terminal dashboard against the same endpoint, and check the flight
# recorder lands on disk. Deep validation (Prometheus linting, JSON
# parsing, mid-run reconciliation) lives in
# crates/bench/tests/telemetry_http.rs and the pfcim binary lints its
# own /metrics body before serving it.
teldir=target/telemetry-smoke
rm -rf "$teldir"
mkdir -p "$teldir"
echo "==> telemetry smoke (live scrape while mining)"
PFCIM_TELEMETRY_TEST_SLOW_NODE_US=20000 \
    cargo run --release -q -p pfcim --bin pfcim -- "$profdir/smoke.dat" \
    --min-sup 8 --telemetry 127.0.0.1:0 \
    --flight-dump "$teldir/flight.jsonl" >"$teldir/run.out" 2>"$teldir/run.err" &
telpid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#.*telemetry listening on http://##p' "$teldir/run.err" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$telpid" 2>/dev/null || { cat "$teldir/run.err"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "telemetry endpoint never came up"; cat "$teldir/run.err"; exit 1; }
run curl -fsS "http://$addr/metrics" -o "$teldir/metrics.prom"
run grep -q '^pfcim_nodes_visited ' "$teldir/metrics.prom"
run curl -fsS "http://$addr/healthz" -o "$teldir/healthz.json"
run grep -q '"status"' "$teldir/healthz.json"
run curl -fsS "http://$addr/flight" -o "$teldir/flight_live.jsonl"
run grep -q '"record"' "$teldir/flight_live.jsonl"
run cargo run --release -q -p pfcim --bin pfcim -- top "$addr" --iterations 1
wait "$telpid"
run test -s "$teldir/flight.jsonl"
run grep -q '"record":"sample"' "$teldir/flight.jsonl"
# Crash post-mortem: an injected panic must still leave a parseable
# flight-recorder dump behind (the panic hook writes it on the way out).
echo "==> telemetry smoke (flight dump on panic)"
if PFCIM_INJECT_PANIC=10 \
    cargo run --release -q -p pfcim --bin pfcim -- "$profdir/smoke.dat" \
    --min-sup 8 --flight-dump "$teldir/flight_panic.jsonl" \
    --telemetry 127.0.0.1:0 >/dev/null 2>"$teldir/panic.err"; then
    echo "injected panic did not fail the run"; exit 1
fi
run test -s "$teldir/flight_panic.jsonl"
run grep -q '"record":"sample"' "$teldir/flight_panic.jsonl"

echo "ci: all checks passed"
