#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), the full test
# suite, and a compile check of every bench target. Run from anywhere;
# everything executes at the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo test --workspace -q
# Threads matrix: re-run the workspace suite with the differential
# tests pinned to an explicit sequential + parallel worker pair.
run env PFCIM_TEST_THREADS=1,4 cargo test --workspace -q
run cargo test -p pfcim-core --features track-alloc -q
run cargo check --benches --workspace
# Rustdoc must build clean: broken intra-doc links and malformed
# examples are errors, not warnings.
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
# Benchmark pipeline smoke: run the tiny matrix end-to-end and
# schema-validate the emitted BENCH_smoke.json.
run scripts/bench.sh --smoke
# Profiler/exporter smoke: mine the high-probability dataset under the
# span profiler and check both artifacts exist and carry the expected
# markers. Deep validation (JSON round-trip, span nesting, Prometheus
# linting) lives in crates/bench/tests/profile_exporters.rs; the pfcim
# binary additionally lints its own --prom output before writing it.
profdir=target/profile-smoke
mkdir -p "$profdir"
run cargo run --release -q -p pfcim-bench --example gen_smoke_dat -- "$profdir/smoke.dat"
run cargo run --release -q -p pfcim --bin pfcim -- profile "$profdir/smoke.dat" \
    --min-sup 1% --out "$profdir/trace.json" --sample 4 \
    --prom "$profdir/metrics.prom" --stats
run grep -q '"traceEvents"' "$profdir/trace.json"
run grep -q '^pfcim_nodes_visited ' "$profdir/metrics.prom"
run grep -q '^# TYPE pfcim_audit_incremental counter' "$profdir/metrics.prom"

echo "ci: all checks passed"
