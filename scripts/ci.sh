#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), the full test
# suite, and a compile check of every bench target. Run from anywhere;
# everything executes at the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --check
run cargo clippy --workspace --all-targets -- -D warnings
run cargo test --workspace -q
# Threads matrix: re-run the workspace suite with the differential
# tests pinned to an explicit sequential + parallel worker pair.
run env PFCIM_TEST_THREADS=1,4 cargo test --workspace -q
run cargo test -p pfcim-core --features track-alloc -q
run cargo check --benches --workspace
# Rustdoc must build clean: broken intra-doc links and malformed
# examples are errors, not warnings.
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
# Benchmark pipeline smoke: run the tiny matrix end-to-end and
# schema-validate the emitted BENCH_smoke.json.
run scripts/bench.sh --smoke

echo "ci: all checks passed"
